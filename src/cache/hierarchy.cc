#include "cache/hierarchy.hh"

#include <algorithm>

#include "check/checker.hh"
#include "common/attrib.hh"
#include "common/log.hh"
#include "common/trace.hh"

namespace hetsim::cache
{

Hierarchy::Hierarchy(const Params &params, cwf::MemoryBackend &backend)
    : params_(params), backend_(backend), l2_(params.l2),
      mshrs_(params.mshrs), prefetcher_(params.prefetch)
{
    sim_assert(params_.cores > 0, "hierarchy needs cores");
    for (unsigned c = 0; c < params_.cores; ++c) {
        Cache::Params l1 = params_.l1;
        l1.name = "l1." + std::to_string(c);
        l1s_.push_back(std::make_unique<Cache>(l1));
    }
    backend_.setCallbacks(cwf::MemoryBackend::Callbacks{
        [this](std::uint64_t id, Tick now, bool parity_ok) {
            onCriticalArrived(id, now, parity_ok);
        },
        [this](std::uint64_t id, Tick now) { onLineCompleted(id, now); },
    });
}

Hierarchy::AccessResult
Hierarchy::load(std::uint8_t core, std::uint16_t slot, Addr addr, Tick now)
{
    stats_.loads.inc();
    return accessImpl(core, slot, addr, now, /*is_store=*/false);
}

Hierarchy::AccessResult
Hierarchy::store(std::uint8_t core, Addr addr, Tick now)
{
    stats_.stores.inc();
    return accessImpl(core, /*slot=*/0, addr, now, /*is_store=*/true);
}

bool
Hierarchy::commitPrivateHit(std::uint8_t core, std::uint16_t slot,
                            Addr addr, Tick now, bool is_store,
                            const Cache::PredictedLine &pred,
                            AccessResult &out)
{
    const Addr line = lineBase(addr);
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) [[unlikely]] {
        // Shadow mode: the full lookup is the authoritative effect (so
        // stats match a lean-off run exactly), field-compared against
        // what the distilled path would have committed.
        const bool fresh = l1s_[core]->predictionFresh(pred);
        if (!fresh)
            return false; // same fallback the lean path would take
        out = is_store ? store(core, addr, now)
                       : this->load(core, slot, addr, now);
        if (out.outcome != Outcome::Ready) {
            check::onLeanCommitMismatch(
                core, now, addr, "outcome",
                static_cast<std::uint64_t>(Outcome::Ready),
                static_cast<std::uint64_t>(out.outcome));
        }
        if (out.level != HitLevel::L1) {
            check::onLeanCommitMismatch(
                core, now, addr, "level",
                static_cast<std::uint64_t>(HitLevel::L1),
                static_cast<std::uint64_t>(out.level));
        }
        if (out.readyAt != now + params_.l1Latency) {
            check::onLeanCommitMismatch(core, now, addr, "ready_at",
                                        now + params_.l1Latency,
                                        out.readyAt);
        }
        return true;
    }
#endif
    if (!l1s_[core]->commitPredicted(pred, line, is_store))
        return false;
    if (is_store) {
        stats_.stores.inc();
    } else {
        stats_.loads.inc();
        HETSIM_TRACE_EVENT(trace::Event::CoreIssue, now, 0, line, core, 0,
                           0, wordOfLine(addr));
    }
    attrib::sample(stats_.lookupLatencyHist,
                   static_cast<double>(params_.l1Latency));
    out = {Outcome::Ready, now + params_.l1Latency, HitLevel::L1};
    return true;
}

Hierarchy::AccessResult
Hierarchy::accessImpl(std::uint8_t core, std::uint16_t slot, Addr addr,
                      Tick now, bool is_store)
{
    const Addr line = lineBase(addr);
    const unsigned word = wordOfLine(addr);

    if (!is_store) {
        HETSIM_TRACE_EVENT(trace::Event::CoreIssue, now, 0, line, core, 0,
                           0, word);
    }

    // 1. A fill for this line is already in flight: merge into the MSHR.
    if (MshrEntry *entry = mshrs_.find(line)) {
        entry->demandJoined = true;
        if (word != entry->requestedWord &&
            entry->secondAccessTick == kTickNever) {
            entry->secondAccessTick = now;
            stats_.secondAccesses.inc();
        }
        if (is_store) {
            entry->writeAllocate = true;
            return {Outcome::Ready, now + 1, HitLevel::Memory};
        }
        // The critical word may already sit in the MSHR buffer.
        if (entry->fastArrived && entry->fastParityOk &&
            word == entry->storedCriticalWord) {
            return {Outcome::Ready, now + 1, HitLevel::Memory};
        }
        entry->waiters.push_back(MshrWaiter{
            core, slot, static_cast<std::uint8_t>(word), now});
        stats_.mshrJoins.inc();
        // A fast fragment that already arrived and did not satisfy this
        // word (mismatch or parity fail) means only the bulk fragment
        // can wake the load.
        return {Outcome::Pending, kTickNever, HitLevel::Memory,
                entry->fastArrived};
    }

    // 2. Private L1.
    if (l1s_[core]->access(line, is_store)) {
        attrib::sample(stats_.lookupLatencyHist,
                       static_cast<double>(params_.l1Latency));
        return {Outcome::Ready, now + params_.l1Latency, HitLevel::L1};
    }

    // 3. Shared L2 (inclusive).
    if (l2_.access(line, /*mark_dirty=*/false)) {
        fillL1(core, line, is_store);
        trainAndPrefetch(core, line, now);
        attrib::sample(stats_.lookupLatencyHist,
                       static_cast<double>(params_.l2Latency));
        return {Outcome::Ready, now + params_.l2Latency, HitLevel::L2};
    }

    // 4. LLC miss.
    if (!mshrs_.hasFree()) {
        mshrs_.noteFullStall();
        stats_.blockedAccesses.inc();
        return {Outcome::Blocked, kTickNever, HitLevel::Memory};
    }
    if (!backend_.canAcceptFill(line)) {
        stats_.blockedAccesses.inc();
        return {Outcome::Blocked, kTickNever, HitLevel::Memory};
    }

    MshrEntry *entry = mshrs_.allocate(line, now);
    sim_assert(entry, "MSHR allocation failed after hasFree check");
    entry->requestedWord = word;
    entry->isPrefetch = false;
    entry->writeAllocate = is_store;
    entry->allocCore = core;
    entry->storedCriticalWord =
        backend_.plannedCriticalWord(line, word, /*is_demand=*/true);
    HETSIM_TRACE_EVENT(trace::Event::MshrAlloc, now, entry->id, line, core,
                       0, 0, word);

    stats_.demandMisses.inc();
    if (is_store)
        stats_.storeMisses.inc();
    stats_.criticalWordHist[word].inc();
    if (params_.trackPerLineCriticality)
        lineCriticality_[line][word] += 1;
    if (params_.trackPageCounts)
        pageCounts_[pageOf(line)] += 1;

    if (!is_store) {
        entry->waiters.push_back(MshrWaiter{
            core, slot, static_cast<std::uint8_t>(word), now});
    }

    downstreamArms_ += 1;
    backend_.requestFill(
        cwf::MemoryBackend::FillRequest{line, word, false, core, entry->id},
        now);

    trainAndPrefetch(core, line, now);

    if (is_store)
        return {Outcome::Ready, now + 1, HitLevel::Memory};
    return {Outcome::Pending, kTickNever, HitLevel::Memory};
}

void
Hierarchy::trainAndPrefetch(std::uint8_t core, Addr line_addr, Tick now)
{
    if (!prefetcher_.enabled())
        return;
    prefetchScratch_.clear();
    prefetcher_.train(core, line_addr, prefetchScratch_);
    for (const Addr target : prefetchScratch_) {
        if (l2_.probe(target) || mshrs_.find(target))
            continue;
        if (!mshrs_.hasFree() || !backend_.canAcceptFill(target))
            break; // prefetches are droppable
        MshrEntry *entry = mshrs_.allocate(target, now);
        entry->requestedWord = 0;
        entry->isPrefetch = true;
        entry->allocCore = core;
        entry->storedCriticalWord =
            backend_.plannedCriticalWord(target, 0, /*is_demand=*/false);
        stats_.prefetchIssued.inc();
        prefetcher_.noteIssued();
        downstreamArms_ += 1;
        backend_.requestFill(cwf::MemoryBackend::FillRequest{
                                 target, 0, true, core, entry->id},
                             now);
    }
}

void
Hierarchy::onCriticalArrived(std::uint64_t mshr_id, Tick now,
                             bool parity_ok)
{
    MshrEntry &entry = mshrs_.byId(mshr_id);
    sim_assert(!entry.fastArrived, "duplicate critical arrival");
    entry.fastArrived = true;
    entry.fastTick = now;
    entry.fastParityOk = parity_ok;

    if (!parity_ok) {
        // Paper Section 4.2.3: on parity error the data is forwarded only
        // after the ECC code arrives and the error has been corrected.
        stats_.parityBlockedWakes.inc();
        // Every parked load now waits on the bulk fragment.
        if (bulkMark_) {
            for (const auto &waiter : entry.waiters)
                bulkMark_(waiter.coreId, waiter.robSlot);
        }
        return;
    }

    // Wake every waiter whose requested word is the buffered one.  The
    // validator sees the state the wakes are about to be issued from.
    check::onEarlyWake(entry.id, now, entry.fastArrived, entry.fastTick,
                       entry.fastParityOk);
    auto &waiters = entry.waiters;
    for (auto it = waiters.begin(); it != waiters.end();) {
        if (it->word == entry.storedCriticalWord) {
            if (wake_)
                wake_(it->coreId, it->robSlot, now);
            stats_.earlyWakes.inc();
            entry.earlyWoke = true;
            if (attrib::enabled()) {
                stats_.mshrWaitHist.sample(
                    static_cast<double>(now - it->joinTick));
            }
            HETSIM_TRACE_EVENT(trace::Event::EarlyWake, now, entry.id,
                               entry.lineAddr, it->coreId, 0, 0, it->word);
            it = waiters.erase(it);
        } else {
            // The fast word cannot serve this load: it now waits on the
            // bulk fragment (CPI-stack attribution).
            if (bulkMark_)
                bulkMark_(it->coreId, it->robSlot);
            ++it;
        }
    }

    if (!entry.isPrefetch &&
        entry.requestedWord == entry.storedCriticalWord) {
        stats_.servedByFast.inc();
        stats_.criticalWordLatency.sample(
            static_cast<double>(now - entry.allocTick));
        stats_.criticalWordLatencyHist.sample(
            static_cast<double>(now - entry.allocTick));
    }
}

void
Hierarchy::onLineCompleted(std::uint64_t mshr_id, Tick now)
{
    MshrEntry &entry = mshrs_.byId(mshr_id);
    sim_assert(!entry.slowArrived, "duplicate line completion");
    check::onLineComplete(entry.id, now,
                          entry.storedCriticalWord != MshrEntry::kNoFastWord,
                          entry.fastArrived, entry.fastTick);
    entry.slowArrived = true;
    entry.slowTick = now;
    HETSIM_TRACE_EVENT(trace::Event::LineComplete, now, entry.id,
                       entry.lineAddr, entry.allocCore, 0, 0,
                       entry.requestedWord);

    if (entry.storedCriticalWord != MshrEntry::kNoFastWord) {
        sim_assert(entry.fastArrived,
                   "line completed before its fast fragment");
        const double lead =
            static_cast<double>(entry.slowTick - entry.fastTick);
        stats_.fastLead.sample(lead);
        stats_.fastLeadHist.sample(lead);
        if (entry.earlyWoke)
            stats_.earlyWakeLeadHist.sample(lead);
    }
    if (!entry.isPrefetch) {
        stats_.missLatencyHist.sample(
            static_cast<double>(now - entry.allocTick));
    }

    // Latency of the requested word when it was NOT served early.
    const bool served_fast = entry.fastArrived && entry.fastParityOk &&
                             entry.requestedWord ==
                                 entry.storedCriticalWord;
    if (!entry.isPrefetch && !served_fast) {
        stats_.criticalWordLatency.sample(
            static_cast<double>(now - entry.allocTick));
        stats_.criticalWordLatencyHist.sample(
            static_cast<double>(now - entry.allocTick));
    }

    for (const auto &waiter : entry.waiters) {
        if (wake_)
            wake_(waiter.coreId, waiter.robSlot, now);
        if (attrib::enabled()) {
            stats_.mshrWaitHist.sample(
                static_cast<double>(now - waiter.joinTick));
        }
    }
    entry.waiters.clear();

    if (entry.secondAccessTick != kTickNever) {
        stats_.secondAccessGap.sample(
            static_cast<double>(entry.secondAccessTick - entry.allocTick));
        if (entry.secondAccessTick < now)
            stats_.secondBeforeComplete.inc();
    }

    if (!entry.isPrefetch || entry.demandJoined)
        stats_.demandCompletions.inc();

    installLine(entry, now);
    mshrs_.release(entry);
}

void
Hierarchy::installLine(MshrEntry &entry, Tick now)
{
    (void)now;
    const Cache::Eviction ev = l2_.fill(entry.lineAddr,
                                        entry.writeAllocate);
    if (ev.valid) {
        bool dirty = ev.dirty;
        // Inclusive L2: purge the victim from every L1, folding dirty
        // data into the writeback.  An affected core's L1 membership is
        // about to change from outside its own tick, so its frozen
        // replay interval must be closed first (CoreTouchFn contract);
        // the side-effect-free probe finds the affected cores without
        // changing which invalidations happen.
        for (unsigned c = 0; c < params_.cores; ++c) {
            Cache &l1 = *l1s_[c];
            if (!l1.probe(ev.lineAddr))
                continue;
            if (touchPrepare_)
                touchPrepare_(static_cast<std::uint8_t>(c));
            if (l1.invalidate(ev.lineAddr))
                dirty = true;
            if (touchDone_)
                touchDone_(static_cast<std::uint8_t>(c), ev.lineAddr);
        }
        if (dirty)
            queueWriteback(ev.lineAddr);
    }

    // Install into the requesters' L1s (prefetches stop at L2).  This is
    // the external-touch path with no wake attached (store-miss fills,
    // merged second fills), hence the same notifications.
    if (!entry.isPrefetch) {
        if (touchPrepare_)
            touchPrepare_(entry.allocCore);
        const Addr victim =
            fillL1(entry.allocCore, entry.lineAddr, entry.writeAllocate);
        if (touchDone_)
            touchDone_(entry.allocCore, victim);
    }
}

Addr
Hierarchy::fillL1(std::uint8_t core, Addr line_addr, bool dirty)
{
    Cache &l1 = *l1s_[core];
    if (l1.probe(line_addr)) {
        if (dirty)
            l1.access(line_addr, true);
        return kNoEvictedLine;
    }
    const Cache::Eviction ev = l1.fill(line_addr, dirty);
    if (ev.valid && ev.dirty) {
        // Inclusive hierarchy: the victim must still be in L2.
        if (l2_.probe(ev.lineAddr)) {
            l2_.access(ev.lineAddr, /*mark_dirty=*/true);
        } else {
            queueWriteback(ev.lineAddr);
        }
    }
    return ev.valid ? ev.lineAddr : kNoEvictedLine;
}

void
Hierarchy::queueWriteback(Addr line_addr)
{
    sim_assert(pendingWritebacks_.size() < 4096,
               "writeback queue runaway");
    downstreamArms_ += 1;
    pendingWritebacks_.push_back(line_addr);
}

void
Hierarchy::tick(Tick now)
{
    while (!pendingWritebacks_.empty() &&
           backend_.canAcceptWriteback(pendingWritebacks_.front())) {
        backend_.requestWriteback(pendingWritebacks_.front(), now);
        stats_.writebacks.inc();
        pendingWritebacks_.pop_front();
    }
}

Tick
Hierarchy::nextEventTick(Tick now) const
{
    if (pendingWritebacks_.empty())
        return kTickNever;
    if (backend_.canAcceptWriteback(pendingWritebacks_.front()))
        return now;
    // Queue full: admission frees only when the target channel issues a
    // write, which is one of the backend's own events.
    return kTickNever;
}

double
Hierarchy::criticalWordFraction(unsigned w) const
{
    sim_assert(w < kWordsPerLine, "word index out of range");
    std::uint64_t total = 0;
    for (const auto &c : stats_.criticalWordHist)
        total += c.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(stats_.criticalWordHist[w].value()) /
           static_cast<double>(total);
}

void
Hierarchy::registerStats(StatRegistry &registry) const
{
    StatGroup &h = registry.group("cache/hierarchy");
    h.addCounter("loads", &stats_.loads);
    h.addCounter("stores", &stats_.stores);
    h.addCounter("demand_misses", &stats_.demandMisses);
    h.addCounter("demand_completions", &stats_.demandCompletions);
    h.addCounter("prefetch_issued", &stats_.prefetchIssued);
    h.addCounter("store_misses", &stats_.storeMisses);
    h.addCounter("mshr_joins", &stats_.mshrJoins);
    h.addCounter("blocked_accesses", &stats_.blockedAccesses);
    h.addCounter("served_by_fast", &stats_.servedByFast);
    h.addCounter("early_wakes", &stats_.earlyWakes);
    h.addCounter("parity_blocked_wakes", &stats_.parityBlockedWakes);
    h.addCounter("writebacks", &stats_.writebacks);
    h.addCounter("second_accesses", &stats_.secondAccesses);
    h.addCounter("second_before_complete", &stats_.secondBeforeComplete);
    h.addAverage("critical_word_latency_ticks",
                 &stats_.criticalWordLatency);
    h.addAverage("fast_lead_ticks", &stats_.fastLead);
    h.addAverage("second_access_gap_ticks", &stats_.secondAccessGap);
    h.addHistogram("critical_word_latency_ticks_hist",
                   &stats_.criticalWordLatencyHist);
    h.addHistogram("fast_lead_ticks_hist", &stats_.fastLeadHist);
    h.addHistogram("early_wake_lead_ticks", &stats_.earlyWakeLeadHist);
    h.addHistogram("miss_latency_ticks", &stats_.missLatencyHist);
    h.addHistogram("lookup_latency_ticks", &stats_.lookupLatencyHist);
    h.addHistogram("mshr_wait_ticks", &stats_.mshrWaitHist);
    h.addCounter("l2_hits", &l2_.hits());
    h.addCounter("l2_misses", &l2_.misses());

    StatGroup &m = registry.group("cache/mshr");
    m.addCounter("allocations", &mshrs_.allocations());
    m.addCounter("full_stalls", &mshrs_.fullStalls());
    m.addGauge("in_use",
               [this] { return static_cast<double>(mshrs_.inUse()); });
    m.addGauge("capacity",
               [this] { return static_cast<double>(mshrs_.capacity()); });
}

bool
Hierarchy::quiescent() const
{
    return mshrs_.inUse() == 0 && pendingWritebacks_.empty();
}

void
Hierarchy::resetStats()
{
    stats_ = HierStats{};
    for (auto &l1 : l1s_)
        l1->resetStats();
    l2_.resetStats();
    mshrs_.resetStats();
    prefetcher_.resetStats();
    lineCriticality_.clear();
    pageCounts_.clear();
}

} // namespace hetsim::cache
