#include "cache/cache.hh"

#include "common/log.hh"

namespace hetsim::cache
{

Cache::Cache(const Params &params) : params_(params)
{
    sim_assert(params_.ways > 0, "cache needs at least one way");
    sim_assert(params_.sizeBytes % (kLineBytes * params_.ways) == 0,
               params_.name, ": size not divisible by way size");
    sets_ = static_cast<unsigned>(params_.sizeBytes /
                                  (kLineBytes * params_.ways));
    sim_assert(sets_ > 0, params_.name, ": zero sets");
    lines_.resize(static_cast<std::size_t>(sets_) * params_.ways);
    setGen_.resize(sets_, 0);
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::uint64_t index = line_addr >> kLineShift;
    const unsigned set = static_cast<unsigned>(index % sets_);
    const std::uint64_t tag = index / sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::access(Addr line_addr, bool mark_dirty)
{
    Line *line = findLine(line_addr);
    if (!line) {
        misses_.inc();
        return false;
    }
    hits_.inc();
    line->lru = ++lruClock_;
    if (mark_dirty)
        line->dirty = true;
    return true;
}

bool
Cache::probe(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

bool
Cache::probePredict(Addr line_addr, PredictedLine &pred) const
{
    const Line *line = findLine(line_addr);
    if (!line) {
        pred.valid = false;
        return false;
    }
    const std::uint64_t index = line_addr >> kLineShift;
    const unsigned set = static_cast<unsigned>(index % sets_);
    pred.lineIdx = static_cast<std::uint32_t>(line - lines_.data());
    pred.gen = setGen_[set];
    pred.valid = true;
    return true;
}

Cache::Eviction
Cache::fill(Addr line_addr, bool dirty)
{
    sim_assert(!probe(line_addr), params_.name,
               ": fill of already-present line");
    const std::uint64_t index = line_addr >> kLineShift;
    const unsigned set = static_cast<unsigned>(index % sets_);
    const std::uint64_t tag = index / sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];

    Line *victim = &base[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        // Reconstruct the victim's address from tag and set.
        ev.lineAddr = (victim->tag * sets_ + set) << kLineShift;
        ev.dirty = victim->dirty;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    setGen_[set] += 1;
    return ev;
}

bool
Cache::invalidate(Addr line_addr, bool *was_present)
{
    Line *line = findLine(line_addr);
    if (was_present)
        *was_present = line != nullptr;
    if (!line)
        return false;
    const bool dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    const std::uint64_t index = line_addr >> kLineShift;
    setGen_[static_cast<unsigned>(index % sets_)] += 1;
    return dirty;
}

} // namespace hetsim::cache
