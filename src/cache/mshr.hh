/**
 * @file
 * Miss Status Holding Register file with support for the paper's
 * fragmented (two-part) cache-line transfers: an entry buffers the
 * critical-word fragment from the fast DIMM and the rest-of-line+ECC
 * fragment from the slow DIMM independently (paper Section 4.2.2:
 * "the added complexity is the support for buffering two parts of the
 * cache line in the MSHR").
 */

#ifndef HETSIM_CACHE_MSHR_HH
#define HETSIM_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hetsim::cache
{

/** A load waiting on an outstanding line. */
struct MshrWaiter
{
    std::uint8_t coreId = 0;
    std::uint16_t robSlot = 0;
    std::uint8_t word = 0;  ///< word of the line the load needs
    Tick joinTick = 0;      ///< when the load parked (MSHR-wait phase)
};

struct MshrEntry
{
    bool valid = false;
    std::uint64_t id = 0;  ///< stable handle passed to the memory backend
    Addr lineAddr = kAddrInvalid;

    /** Word index stored on the fast DIMM for this line; kNoFastWord for
     *  configurations without a fast fragment. */
    static constexpr unsigned kNoFastWord = kWordsPerLine;
    unsigned storedCriticalWord = kNoFastWord;

    /** Word requested by the miss that allocated the entry. */
    unsigned requestedWord = 0;

    bool isPrefetch = false;
    /** A demand access merged into this (prefetch) entry while it was in
     *  flight; such fills count toward the demand work quantum. */
    bool demandJoined = false;
    bool writeAllocate = false;  ///< fill installs dirty (store miss)

    /** Core whose access allocated the entry (gets the L1 fill). */
    std::uint8_t allocCore = 0;

    bool fastArrived = false;
    bool fastParityOk = true;
    bool slowArrived = false;
    /** At least one waiter was woken by the fast fragment (feeds the
     *  early-wake lead histogram at completion). */
    bool earlyWoke = false;

    Tick allocTick = 0;
    Tick fastTick = kTickNever;
    Tick slowTick = kTickNever;

    /** First access to a *different* word than requestedWord, for the
     *  paper's gap-to-second-access analysis (Section 6.1.1). */
    Tick secondAccessTick = kTickNever;

    std::vector<MshrWaiter> waiters;

    bool
    complete() const
    {
        return slowArrived &&
               (fastArrived || storedCriticalWord == kNoFastWord);
    }
};

class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity);
    ~MshrFile();

    bool hasFree() const { return freeList_.size() > 0; }
    std::size_t inUse() const { return capacity_ - freeList_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Entry tracking @p line_addr, or nullptr. */
    MshrEntry *find(Addr line_addr);
    const MshrEntry *find(Addr line_addr) const;

    /** Entry with handle @p id (must be live). */
    MshrEntry &byId(std::uint64_t id);

    /** Allocate a fresh entry; nullptr when full. */
    MshrEntry *allocate(Addr line_addr, Tick now);

    /** Release a completed entry. */
    void release(MshrEntry &entry);

    const Counter &allocations() const { return allocations_; }
    const Counter &fullStalls() const { return fullStalls_; }
    void noteFullStall() { fullStalls_.inc(); }

    void
    resetStats()
    {
        allocations_.reset();
        fullStalls_.reset();
    }

  private:
    unsigned capacity_;
    std::vector<MshrEntry> entries_;
    std::vector<unsigned> freeList_;
    std::unordered_map<Addr, unsigned> byLine_;
    std::uint64_t nextId_ = 1;

    Counter allocations_;
    Counter fullStalls_;
};

} // namespace hetsim::cache

#endif // HETSIM_CACHE_MSHR_HH
