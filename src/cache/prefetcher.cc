#include "cache/prefetcher.hh"

#include "common/log.hh"

namespace hetsim::cache
{

StridePrefetcher::StridePrefetcher(const Params &params) : params_(params)
{
    sim_assert(params_.tableSize > 0, "prefetcher table size");
    table_.resize(params_.tableSize);
}

void
StridePrefetcher::train(std::uint8_t core_id, Addr line_addr,
                        std::vector<Addr> &out)
{
    if (!params_.enabled)
        return;
    const auto line = static_cast<std::int64_t>(line_addr >> kLineShift);
    // One detector stream per (core, 4 KB region).
    const std::uint64_t region = line_addr >> kPageShift;
    const std::uint64_t key =
        region * 31 + static_cast<std::uint64_t>(core_id) * 0x9e3779b9ULL;
    Entry &e = table_[key % table_.size()];

    if (!e.valid || e.tag != key) {
        e.valid = true;
        e.tag = key;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    const std::int64_t delta = line - e.lastLine;
    e.lastLine = line;
    if (delta == 0)
        return;
    if (delta == e.stride) {
        if (e.confidence < 255)
            e.confidence += 1;
    } else {
        e.stride = delta;
        e.confidence = 1;
        return;
    }

    if (e.confidence < params_.minConfidence)
        return;

    triggers_.inc();
    for (unsigned k = 0; k < params_.degree; ++k) {
        const std::int64_t target =
            line + e.stride * static_cast<std::int64_t>(params_.distance +
                                                        k);
        if (target < 0)
            break;
        out.push_back(static_cast<Addr>(target) << kLineShift);
    }
}

} // namespace hetsim::cache
