#include "cache/mshr.hh"

#include "check/checker.hh"
#include "common/log.hh"

namespace hetsim::cache
{

MshrFile::~MshrFile()
{
    check::onMshrDomainDestroyed(this);
}

MshrFile::MshrFile(unsigned capacity) : capacity_(capacity)
{
    sim_assert(capacity_ > 0, "MSHR file needs capacity");
    entries_.resize(capacity_);
    freeList_.reserve(capacity_);
    for (unsigned i = 0; i < capacity_; ++i)
        freeList_.push_back(capacity_ - 1 - i);
}

MshrEntry *
MshrFile::find(Addr line_addr)
{
    const auto it = byLine_.find(line_addr);
    return it == byLine_.end() ? nullptr : &entries_[it->second];
}

const MshrEntry *
MshrFile::find(Addr line_addr) const
{
    const auto it = byLine_.find(line_addr);
    return it == byLine_.end() ? nullptr : &entries_[it->second];
}

MshrEntry &
MshrFile::byId(std::uint64_t id)
{
    // Ids encode their slot in the low bits for O(1) lookup.
    const unsigned slot = static_cast<unsigned>(id % capacity_);
    MshrEntry &entry = entries_[slot];
    sim_assert(entry.valid && entry.id == id, "stale MSHR handle ", id);
    return entry;
}

MshrEntry *
MshrFile::allocate(Addr line_addr, Tick now)
{
    sim_assert(!find(line_addr), "duplicate MSHR for line ", line_addr);
    if (freeList_.empty())
        return nullptr;
    const unsigned slot = freeList_.back();
    freeList_.pop_back();

    MshrEntry &entry = entries_[slot];
    entry = MshrEntry{};
    entry.valid = true;
    // Handle = generation * capacity + slot, so byId can both locate the
    // slot and detect staleness.
    entry.id = nextId_ * capacity_ + slot;
    nextId_ += 1;
    entry.lineAddr = line_addr;
    entry.allocTick = now;

    byLine_[line_addr] = slot;
    allocations_.inc();
    check::onMshrAlloc(this, entry.id, now);
    return &entry;
}

void
MshrFile::release(MshrEntry &entry)
{
    sim_assert(entry.valid, "release of invalid MSHR entry");
    const auto it = byLine_.find(entry.lineAddr);
    sim_assert(it != byLine_.end() && &entries_[it->second] == &entry,
               "MSHR map corruption");
    const unsigned slot = it->second;
    byLine_.erase(it);
    check::onMshrRelease(this, entry.id, entry.allocTick);
    entry.valid = false;
    entry.waiters.clear();
    freeList_.push_back(slot);
}

} // namespace hetsim::cache
