/**
 * @file
 * Stride prefetcher at the shared L2 (paper Section 5: "we also model a
 * stride prefetcher"; the memory controller prioritises demands over
 * prefetches unless a prefetch ages past a threshold — that part lives in
 * dram::SchedulerPolicy).
 *
 * Detection is per (core, 4 KB region): a table entry tracks the last
 * line touched and the current line stride; after `minConfidence`
 * consecutive confirmations it emits `degree` prefetch candidates ahead
 * of the stream.
 */

#ifndef HETSIM_CACHE_PREFETCHER_HH
#define HETSIM_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hetsim::cache
{

class StridePrefetcher
{
  public:
    struct Params
    {
        unsigned tableSize = 256;  ///< direct-mapped detector entries
        unsigned degree = 2;       ///< prefetches issued per trigger
        /** Lines of lead ahead of the demand stream; covering a stream
         *  requires distance x inter-line demand gap > memory latency. */
        unsigned distance = 4;
        unsigned minConfidence = 2;
        bool enabled = true;
    };

    explicit StridePrefetcher(const Params &params);

    /**
     * Train on a demand L2 access and append prefetch candidate line
     * addresses to @p out (the caller filters against cache/MSHR
     * contents and queue space).
     */
    void train(std::uint8_t core_id, Addr line_addr,
               std::vector<Addr> &out);

    const Counter &issued() const { return issued_; }
    void noteIssued() { issued_.inc(); }
    const Counter &triggers() const { return triggers_; }

    bool enabled() const { return params_.enabled; }

    void
    resetStats()
    {
        issued_.reset();
        triggers_.reset();
    }

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::int64_t lastLine = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    Params params_;
    std::vector<Entry> table_;

    Counter issued_;
    Counter triggers_;
};

} // namespace hetsim::cache

#endif // HETSIM_CACHE_PREFETCHER_HH
