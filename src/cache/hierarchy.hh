/**
 * @file
 * Two-level cache hierarchy glue: per-core private L1s, a shared L2, the
 * stride prefetcher, the MSHR file with two-part line buffering, and the
 * writeback path to the memory backend.
 *
 * This layer implements the paper's processor-side CWF mechanics: on an
 * LLC miss the backend may return the critical word early; waiting loads
 * whose requested word matches the fast fragment are woken immediately
 * (guarded by the parity check), everything else waits for the full line
 * plus ECC.
 */

#ifndef HETSIM_CACHE_HIERARCHY_HH
#define HETSIM_CACHE_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "cache/prefetcher.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/memory_backend.hh"

namespace hetsim::cache
{

class Hierarchy
{
  public:
    struct Params
    {
        unsigned cores = 8;
        Cache::Params l1{"l1", 32 * 1024, 2};       // Table 1
        Cache::Params l2{"l2", 4 * 1024 * 1024, 8}; // Table 1
        unsigned l1Latency = 1;
        unsigned l2Latency = 10;
        unsigned mshrs = 128;
        StridePrefetcher::Params prefetch;
        /** Record per-line critical-word histograms (Fig. 3). */
        bool trackPerLineCriticality = false;
        /** Record per-page access counts (Section 7.1 profiling). */
        bool trackPageCounts = false;
    };

    enum class Outcome : std::uint8_t { Ready, Pending, Blocked };

    struct AccessResult
    {
        Outcome outcome = Outcome::Ready;
        Tick readyAt = 0;
        HitLevel level = HitLevel::L1;
        /** Pending load that can only be completed by the bulk (rest of
         *  line) fragment: the fast word already arrived and did not
         *  satisfy it.  Feeds the core's CPI-stack bulk-wait bucket. */
        bool bulkWait = false;
    };

    /** Wake a load parked in a core's ROB slot. */
    using WakeFn =
        std::function<void(std::uint8_t core, std::uint16_t slot, Tick)>;

    /** Tag a parked load as waiting on the bulk fragment (the fast word
     *  arrived but could not serve it); CPI-stack attribution only. */
    using BulkMarkFn =
        std::function<void(std::uint8_t core, std::uint16_t slot)>;

    /**
     * Notification that a fill is about to touch (prepare) / has touched
     * (done) a core's private L1 from outside that core's own tick: the
     * L2-eviction back-invalidate and the requester-L1 install.  These
     * are the only mutations of a core-private line set that do not go
     * through the core's WakeFn, so together with wakes they delimit
     * every interval over which a core's L1 membership is frozen — the
     * invariant batched core execution (DESIGN.md section 14) replays
     * against.
     */
    using CoreTouchFn = std::function<void(std::uint8_t core)>;

    /** Done-side notification also names the line the touch *removed*
     *  from the core's L1 (kNoEvictedLine when it only installed):
     *  removals are the one external change that can move a predicted
     *  core-run boundary earlier, so the receiver can invalidate
     *  precisely instead of on every fill. */
    using CoreTouchDoneFn =
        std::function<void(std::uint8_t core, Addr evicted_line)>;
    static constexpr Addr kNoEvictedLine = ~Addr{0};

    Hierarchy(const Params &params, cwf::MemoryBackend &backend);

    void setWakeFn(WakeFn fn) { wake_ = std::move(fn); }
    void setBulkMarkFn(BulkMarkFn fn) { bulkMark_ = std::move(fn); }
    void
    setCoreTouchFns(CoreTouchFn prepare, CoreTouchDoneFn done)
    {
        touchPrepare_ = std::move(prepare);
        touchDone_ = std::move(done);
    }

    /** Issue a load; Pending means the core will be woken via WakeFn. */
    AccessResult load(std::uint8_t core, std::uint16_t slot, Addr addr,
                      Tick now);

    /** Issue a store (never blocks the ROB beyond Blocked-retry). */
    AccessResult store(std::uint8_t core, Addr addr, Tick now);

    /** Per-tick housekeeping: drains the writeback queue. */
    void tick(Tick now);

    /** Earliest tick >= now at which tick() can do work: immediately
     *  while a writeback can drain, never otherwise (a full backend
     *  queue frees up only at one of the backend's own events). */
    Tick nextEventTick(Tick now) const;

    /**
     * Monotonic count of downstream-arming mutations: fill requests
     * handed to the backend and writebacks queued for draining.  These
     * are the only paths through which a core's tick can change this
     * hierarchy's or the backend's nextEventTick(), so the event engine
     * compares this counter across a core tick and skips the downstream
     * re-arms when it is unchanged.
     */
    std::uint64_t downstreamArms() const { return downstreamArms_; }

    // ---- statistics ----
    struct HierStats
    {
        Counter loads;
        Counter stores;
        Counter demandMisses;       ///< demand LLC misses (loads+stores)
        Counter demandCompletions;  ///< demand fills finished
        Counter prefetchIssued;
        Counter storeMisses;
        Counter mshrJoins;          ///< secondary misses merged
        Counter blockedAccesses;
        Counter servedByFast;       ///< requested word came from fast DIMM
        Counter earlyWakes;         ///< loads woken by the fast fragment
        Counter parityBlockedWakes;
        Counter writebacks;
        std::array<Counter, kWordsPerLine> criticalWordHist;
        Average criticalWordLatency;  ///< ticks until requested word
        Average fastLead;             ///< slow - fast arrival gap, ticks
        Average secondAccessGap;      ///< alloc -> second-word access
        Counter secondAccesses;
        Counter secondBeforeComplete;
        /** Requested-word latency distribution (same samples as the
         *  criticalWordLatency average; p50/p99 for fault campaigns). */
        Histogram criticalWordLatencyHist{4.0, 512};
        /** Fast-vs-slow fragment arrival gap distribution, ticks. */
        Histogram fastLeadHist{4.0, 512};
        /** How much earlier an early-woken load ran vs waiting for the
         *  full line, ticks. */
        Histogram earlyWakeLeadHist{4.0, 512};
        /** Demand miss latency (MSHR alloc -> line complete), ticks. */
        Histogram missLatencyHist{16.0, 512};
        // ---- latency-attribution phases (DESIGN.md section 12) ----
        /** L1/L2 lookup service latency for cache hits, ticks. */
        Histogram lookupLatencyHist{1.0, 64};
        /** Parked-load wait (waiter join -> wake), ticks. */
        Histogram mshrWaitHist{16.0, 512};
    };

    const HierStats &stats() const { return stats_; }

    /** Register `cache/hierarchy` and `cache/mshr` stat groups. */
    void registerStats(StatRegistry &registry) const;
    const MshrFile &mshrs() const { return mshrs_; }
    const Cache &l2() const { return l2_; }
    const Cache &l1(unsigned core) const { return *l1s_[core]; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }

    void resetStats();

    /** Fraction of demand misses whose requested word was word @p w. */
    double criticalWordFraction(unsigned w) const;

    /** Per-line critical-word histograms (only when tracking enabled). */
    using LineHist = std::array<std::uint32_t, kWordsPerLine>;
    const std::unordered_map<Addr, LineHist> &lineCriticality() const
    {
        return lineCriticality_;
    }

    /** Per-page access counts (only when tracking enabled). */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    pageCounts() const
    {
        return pageCounts_;
    }

    /** Outstanding work (for drain checks in tests). */
    bool quiescent() const;

    /**
     * True when an access by @p core to @p addr would resolve entirely
     * within its private L1 this tick: no fill in flight for the line
     * (accessImpl merges into MSHRs before probing the L1) and the line
     * present.  Side-effect free — the boundary predictor probes this
     * for future ops without perturbing LRU or prefetcher state, which
     * is sound because L1 hits never change L1 membership.
     */
    bool
    privateHit(std::uint8_t core, Addr addr) const
    {
        const Addr line = lineBase(addr);
        return mshrs_.find(line) == nullptr && l1s_[core]->probe(line);
    }

    /** Service latency of a private L1 hit, ticks. */
    unsigned l1HitLatency() const { return params_.l1Latency; }

    /**
     * privateHit() plus a staleness token: on a hit, @p pred captures
     * the line's way and the owning set's generation so a later
     * commitPrivateHit() can apply the hit in O(1).  The token goes
     * stale the instant any install/evict/invalidate touches the set
     * (Cache::PredictedLine), which — together with the inclusion
     * invariant below — also covers the MSHR half of the privateHit()
     * condition: MSHRs are only allocated for lines absent from the
     * inclusive L2, so a line resident in a core's L1 (hence in L2)
     * cannot acquire an in-flight fill without first leaving that L1,
     * which bumps the generation.
     */
    bool
    privateHitPredict(std::uint8_t core, Addr addr,
                      Cache::PredictedLine &pred) const
    {
        const Addr line = lineBase(addr);
        return (mshrs_.inUse() == 0 || mshrs_.find(line) == nullptr) &&
               l1s_[core]->probePredict(line, pred);
    }

    /**
     * Distilled commit of a frontier-verified private L1 hit
     * (DESIGN.md section 16): applies exactly the architectural side
     * effects of the accessImpl() L1-hit path — load/store counter, the
     * load-issue trace event, the L1 LRU/dirty touch with its hit
     * counter, and the lookup-latency attribution sample — without the
     * MSHR probe or set re-walk.  Returns false with *no* side effects
     * when @p pred is stale; the caller must then fall back to the full
     * tick path.  When the runtime checker is armed, every lean commit
     * is instead served by the full lookup (ground truth) and
     * field-compared against the lean expectation (Rule::LeanCommit).
     */
    bool commitPrivateHit(std::uint8_t core, std::uint16_t slot, Addr addr,
                          Tick now, bool is_store,
                          const Cache::PredictedLine &pred,
                          AccessResult &out);

  private:
    AccessResult accessImpl(std::uint8_t core, std::uint16_t slot,
                            Addr addr, Tick now, bool is_store);

    void onCriticalArrived(std::uint64_t mshr_id, Tick now, bool parity_ok);
    void onLineCompleted(std::uint64_t mshr_id, Tick now);

    void installLine(MshrEntry &entry, Tick now);
    Addr fillL1(std::uint8_t core, Addr line_addr, bool dirty);
    void queueWriteback(Addr line_addr);
    void trainAndPrefetch(std::uint8_t core, Addr line_addr, Tick now);

    Params params_;
    cwf::MemoryBackend &backend_;
    WakeFn wake_;
    BulkMarkFn bulkMark_;
    CoreTouchFn touchPrepare_;
    CoreTouchDoneFn touchDone_;

    std::vector<std::unique_ptr<Cache>> l1s_;
    Cache l2_;
    MshrFile mshrs_;
    StridePrefetcher prefetcher_;

    std::deque<Addr> pendingWritebacks_;
    std::vector<Addr> prefetchScratch_;
    std::uint64_t downstreamArms_ = 0;

    HierStats stats_;
    std::unordered_map<Addr, LineHist> lineCriticality_;
    std::unordered_map<std::uint64_t, std::uint64_t> pageCounts_;
};

} // namespace hetsim::cache

#endif // HETSIM_CACHE_HIERARCHY_HH
