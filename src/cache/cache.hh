/**
 * @file
 * Set-associative write-back cache with true-LRU replacement, used for
 * both the private L1s (32 KB / 2-way) and the shared L2 (4 MB / 8-way)
 * of the paper's Table 1 hierarchy.
 *
 * The cache is purely functional (tags + dirty bits); access timing is
 * applied by the core/hierarchy layers.
 */

#ifndef HETSIM_CACHE_CACHE_HH
#define HETSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace hetsim::cache
{

class Cache
{
  public:
    struct Params
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        unsigned ways = 2;
    };

    /** Outcome of an allocation (fill or write-allocate access). */
    struct Eviction
    {
        bool valid = false;   ///< a victim line was evicted
        Addr lineAddr = kAddrInvalid;
        bool dirty = false;
    };

    explicit Cache(const Params &params);

    /**
     * Prediction token for a lean commit (DESIGN §16).
     *
     * Captured by probePredict() at frontier-verification time: the flat
     * index of the hit line plus the owning set's generation counter.
     * The generation is bumped on every membership change in the set
     * (fill or invalidate of a present line) but *not* on LRU/dirty
     * touches, so a matching generation at commit time proves the line
     * still occupies the same way with the same tag.
     */
    struct PredictedLine
    {
        std::uint32_t lineIdx = 0; ///< flat index into lines_
        std::uint32_t gen = 0;     ///< setGen_ value at probe time
        bool valid = false;
    };

    /** Look up a line; on hit, update LRU and optionally set dirty. */
    bool access(Addr line_addr, bool mark_dirty);

    /** Tag-only lookup with no LRU side effects. */
    bool probe(Addr line_addr) const;

    /**
     * Tag-only lookup that additionally captures a staleness token for a
     * later O(1) commitPredicted(). No LRU side effects.
     */
    bool probePredict(Addr line_addr, PredictedLine &pred) const;

    /**
     * Apply the hit side effects (hit counter, LRU touch, dirty bit) for
     * a line previously captured by probePredict(), without re-walking
     * the set. Returns false — with no side effects — if the prediction
     * is stale (the set's membership changed since the probe); the
     * caller must fall back to the full access() path.  Inline: this is
     * the per-op heart of the lean replay loop.
     */
    bool
    commitPredicted(const PredictedLine &pred, Addr line_addr,
                    bool mark_dirty)
    {
        if (!predictionFresh(pred))
            return false;
        Line &line = lines_[pred.lineIdx];
        sim_assert(line.valid &&
                       line.tag == (line_addr >> kLineShift) / sets_ &&
                       pred.lineIdx / params_.ways ==
                           (line_addr >> kLineShift) % sets_,
                   params_.name,
                   ": stale lean-commit prediction not caught "
                   "by set generation");
        hits_.inc();
        line.lru = ++lruClock_;
        if (mark_dirty)
            line.dirty = true;
        return true;
    }

    /** Is @p pred still fresh (set membership unchanged since the
     *  probe)? No side effects; the checker shadow path uses this to
     *  classify a commit before running the full lookup. */
    bool
    predictionFresh(const PredictedLine &pred) const
    {
        return pred.valid &&
               setGen_[pred.lineIdx / params_.ways] == pred.gen;
    }

    /** Install a line (must not be present); returns the victim. */
    Eviction fill(Addr line_addr, bool dirty);

    /** Remove a line if present; returns true if it was dirty. */
    bool invalidate(Addr line_addr, bool *was_present = nullptr);

    const Params &params() const { return params_; }
    unsigned sets() const { return sets_; }

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    Params params_;
    unsigned sets_;
    std::vector<Line> lines_;
    /// Per-set membership generation; bumped on fill/invalidate only.
    std::vector<std::uint32_t> setGen_;
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace hetsim::cache

#endif // HETSIM_CACHE_CACHE_HH
