/**
 * @file
 * Set-associative write-back cache with true-LRU replacement, used for
 * both the private L1s (32 KB / 2-way) and the shared L2 (4 MB / 8-way)
 * of the paper's Table 1 hierarchy.
 *
 * The cache is purely functional (tags + dirty bits); access timing is
 * applied by the core/hierarchy layers.
 */

#ifndef HETSIM_CACHE_CACHE_HH
#define HETSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hetsim::cache
{

class Cache
{
  public:
    struct Params
    {
        std::string name = "cache";
        std::uint64_t sizeBytes = 32 * 1024;
        unsigned ways = 2;
    };

    /** Outcome of an allocation (fill or write-allocate access). */
    struct Eviction
    {
        bool valid = false;   ///< a victim line was evicted
        Addr lineAddr = kAddrInvalid;
        bool dirty = false;
    };

    explicit Cache(const Params &params);

    /** Look up a line; on hit, update LRU and optionally set dirty. */
    bool access(Addr line_addr, bool mark_dirty);

    /** Tag-only lookup with no LRU side effects. */
    bool probe(Addr line_addr) const;

    /** Install a line (must not be present); returns the victim. */
    Eviction fill(Addr line_addr, bool dirty);

    /** Remove a line if present; returns true if it was dirty. */
    bool invalidate(Addr line_addr, bool *was_present = nullptr);

    const Params &params() const { return params_; }
    unsigned sets() const { return sets_; }

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    Params params_;
    unsigned sets_;
    std::vector<Line> lines_;
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace hetsim::cache

#endif // HETSIM_CACHE_CACHE_HH
