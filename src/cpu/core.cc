#include "cpu/core.hh"

#include <algorithm>

#include "common/attrib.hh"
#include "common/log.hh"

namespace hetsim::cpu
{

Core::Core(std::uint8_t id, const Params &params, OpSource source,
           cache::Hierarchy &hierarchy)
    : id_(id), params_(params), source_(std::move(source)),
      hierarchy_(hierarchy)
{
    sim_assert(params_.robSize > 0 && params_.width > 0,
               "core needs ROB entries and width");
    sim_assert(source_, "core needs an op source");
    rob_.resize(params_.robSize);
}

bool
Core::lastLoadPending(Tick now) const
{
    if (lastLoadSlot_ < 0)
        return false;
    const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
    if (!e.valid || e.seq != lastLoadSeq_)
        return false; // that load already retired
    return !e.ready || e.readyAt > now;
}

void
Core::tick(Tick now)
{
    const std::uint64_t retired_before = retired_;

    // ---- retire ----
    for (unsigned w = 0; w < params_.width && count_ > 0; ++w) {
        RobEntry &head = rob_[head_];
        if (!head.ready || head.readyAt > now)
            break;
        head.valid = false;
        head_ = (head_ + 1) % params_.robSize;
        count_ -= 1;
        retired_ += 1;
    }

    // ---- dispatch ----
    for (unsigned w = 0; w < params_.width; ++w) {
        if (robFull()) {
            dispatchStalls_ += 1;
            break;
        }
        workloads::MicroOp op;
        if (pendingOp_) {
            op = *pendingOp_;
        } else {
            op = source_();
        }

        if (op.isMem && op.dependsOnPrev && lastLoadPending(now)) {
            pendingOp_ = op;
            dispatchStalls_ += 1;
            break;
        }

        const std::uint16_t slot = static_cast<std::uint16_t>(tail_);
        RobEntry entry;
        entry.valid = true;
        entry.seq = ++seqCounter_;

        if (!op.isMem) {
            entry.ready = true;
            entry.readyAt = now + 1;
        } else if (op.isWrite) {
            const auto res = hierarchy_.store(id_, op.addr, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.ready = true;
            entry.readyAt = res.readyAt;
        } else {
            const auto res = hierarchy_.load(id_, slot, op.addr, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.isLoad = true;
            if (res.outcome == cache::Hierarchy::Outcome::Ready) {
                entry.ready = true;
                entry.readyAt = res.readyAt;
            } else {
                entry.ready = false;
                entry.bulkWait = res.bulkWait;
            }
            lastLoadSlot_ = static_cast<int>(slot);
            lastLoadSeq_ = entry.seq;
        }

        rob_[tail_] = entry;
        tail_ = (tail_ + 1) % params_.robSize;
        count_ += 1;
        pendingOp_.reset();
    }

    robOccupancySum_ += count_;

    // ---- CPI-stack attribution ----
    if (attrib::enabled()) {
        const CpiBucket bucket = retired_ != retired_before
                                     ? CpiBucket::Compute
                                     : stallBucket();
        cpi_[static_cast<unsigned>(bucket)] += 1;
    }
}

Core::CpiBucket
Core::stallBucket() const
{
    // Deliberately `now`-independent: fastForward() applies this same
    // classification to every skipped tick, so per-tick stepping and
    // event-driven skips must agree on the frozen ROB state alone (the
    // fast-forward report-equality contract).
    if (count_ == 0)
        return CpiBucket::DispatchStall;
    const RobEntry &head = rob_[head_];
    if (!head.ready && head.isLoad)
        return head.bulkWait ? CpiBucket::BulkWait : CpiBucket::CritWait;
    if (!head.ready)
        return CpiBucket::DispatchStall;
    return robFull() ? CpiBucket::RobFull : CpiBucket::DispatchStall;
}

Tick
Core::nextEventTick(Tick now) const
{
    Tick next = kTickNever;

    // Retire side: a ready head bounds the skip; an unready head retires
    // only after a wake, which is a backend event.
    if (count_ > 0) {
        const RobEntry &head = rob_[head_];
        if (head.ready) {
            next = std::max(now, head.readyAt);
            if (next == now)
                return now;
        }
    }

    // Dispatch side.
    if (!robFull()) {
        if (pendingOp_ && pendingOp_->isMem && pendingOp_->dependsOnPrev &&
            lastLoadPending(now)) {
            // Pointer-chase stall: dispatch resumes when the blocking
            // load's data lands — at its known readyAt, or via a wake
            // (again a backend event).
            const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
            if (e.ready)
                next = std::min(next, std::max(now, e.readyAt));
        } else {
            // Fetching fresh work, or retrying a hierarchy-blocked
            // access whose admission can change with any backend state:
            // something can happen every tick.
            return now;
        }
    }
    return next;
}

void
Core::fastForward(Tick from, Tick to)
{
    // Both stall shapes (ROB full, dependence wait) charge exactly one
    // dispatch stall per tick and leave count_ unchanged.
    const std::uint64_t n = to - from;
    dispatchStalls_ += n;
    robOccupancySum_ += static_cast<std::uint64_t>(count_) * n;
    // Closed-form CPI integration: the ROB state is frozen across the
    // skip, so every skipped tick classifies identically.
    if (attrib::enabled())
        cpi_[static_cast<unsigned>(stallBucket())] += n;
}

void
Core::wake(std::uint16_t slot, Tick now)
{
    RobEntry &entry = rob_[slot];
    sim_assert(entry.valid && entry.isLoad && !entry.ready,
               "wake of slot ", slot, " in unexpected state");
    entry.ready = true;
    entry.readyAt = now;
}

void
Core::markBulkWait(std::uint16_t slot)
{
    RobEntry &entry = rob_[slot];
    if (entry.valid && entry.isLoad && !entry.ready)
        entry.bulkWait = true;
}

void
Core::resetStats(Tick now)
{
    retiredAtWindowStart_ = retired_;
    windowStart_ = now;
    robOccupancySum_ = 0;
    dispatchStalls_ = 0;
    cpi_.fill(0);
}

double
Core::ipc(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    return static_cast<double>(retired_ - retiredAtWindowStart_) /
           static_cast<double>(now - windowStart_);
}

void
Core::registerStats(StatRegistry &registry) const
{
    StatGroup &g =
        registry.group("cpu/core/" + std::to_string(unsigned{id_}));
    g.addGauge("retired",
               [this] { return static_cast<double>(retired_); });
    g.addGauge("retired_in_window", [this] {
        return static_cast<double>(retiredInWindow());
    });
    g.addGauge("dispatch_stalls", [this] {
        return static_cast<double>(dispatchStalls_);
    });
    g.addGauge("rob_occupancy_sum", [this] {
        return static_cast<double>(robOccupancySum_);
    });
    const auto cpi = [this](CpiBucket bucket) {
        return [this, bucket] {
            return static_cast<double>(cpiCycles(bucket));
        };
    };
    g.addGauge("cpi_compute", cpi(CpiBucket::Compute));
    g.addGauge("cpi_crit_wait", cpi(CpiBucket::CritWait));
    g.addGauge("cpi_bulk_wait", cpi(CpiBucket::BulkWait));
    g.addGauge("cpi_rob_full", cpi(CpiBucket::RobFull));
    g.addGauge("cpi_dispatch_stall", cpi(CpiBucket::DispatchStall));
}

} // namespace hetsim::cpu
