#include "cpu/core.hh"

#include <algorithm>

#include "check/checker.hh"
#include "common/attrib.hh"
#include "common/log.hh"

namespace hetsim::cpu
{

Core::Core(std::uint8_t id, const Params &params, OpSource source,
           cache::Hierarchy &hierarchy)
    : id_(id), params_(params), source_(std::move(source)),
      hierarchy_(hierarchy)
{
    sim_assert(params_.robSize > 0 && params_.width > 0,
               "core needs ROB entries and width");
    sim_assert(source_, "core needs an op source");
    rob_.resize(params_.robSize);
}

bool
Core::lastLoadPending(Tick now) const
{
    if (lastLoadSlot_ < 0)
        return false;
    const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
    if (!e.valid || e.seq != lastLoadSeq_)
        return false; // that load already retired
    return !e.ready || e.readyAt > now;
}

void
Core::tick(Tick now)
{
    const std::uint64_t retired_before = retired_;

    // ---- retire ----
    for (unsigned w = 0; w < params_.width && count_ > 0; ++w) {
        RobEntry &head = rob_[head_];
        if (!head.ready || head.readyAt > now)
            break;
        head.valid = false;
        head_ = (head_ + 1) % params_.robSize;
        count_ -= 1;
        retired_ += 1;
    }

    // ---- dispatch ----
    for (unsigned w = 0; w < params_.width; ++w) {
        if (robFull()) {
            dispatchStalls_ += 1;
            break;
        }
        workloads::MicroOp op;
        if (pendingOp_) {
            op = *pendingOp_;
        } else if (peekedHead_ < peeked_.size()) {
            op = peeked_[peekedHead_++];
            if (peekedHead_ == peeked_.size()) {
                peeked_.clear();
                peekedHead_ = 0;
            }
        } else {
            op = source_();
        }

        if (op.isMem && op.dependsOnPrev && lastLoadPending(now)) {
            pendingOp_ = op;
            dispatchStalls_ += 1;
            break;
        }

        const std::uint16_t slot = static_cast<std::uint16_t>(tail_);
        RobEntry entry;
        entry.valid = true;
        entry.seq = ++seqCounter_;

        if (!op.isMem) {
            entry.ready = true;
            entry.readyAt = now + 1;
        } else if (op.isWrite) {
            cache::Hierarchy::AccessResult res;
            if (!tryLeanCommit(op.addr, slot, now, /*is_store=*/true, res))
                res = hierarchy_.store(id_, op.addr, now);
            if (replayGuard_) [[unlikely]]
                noteReplayAccess(res, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.ready = true;
            entry.readyAt = res.readyAt;
        } else {
            cache::Hierarchy::AccessResult res;
            if (!tryLeanCommit(op.addr, slot, now, /*is_store=*/false, res))
                res = hierarchy_.load(id_, slot, op.addr, now);
            if (replayGuard_) [[unlikely]]
                noteReplayAccess(res, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.isLoad = true;
            if (res.outcome == cache::Hierarchy::Outcome::Ready) {
                entry.ready = true;
                entry.readyAt = res.readyAt;
            } else {
                entry.ready = false;
                entry.bulkWait = res.bulkWait;
                parkedSlots_.push_back(slot);
            }
            lastLoadSlot_ = static_cast<int>(slot);
            lastLoadSeq_ = entry.seq;
        }

        rob_[tail_] = entry;
        tail_ = (tail_ + 1) % params_.robSize;
        count_ += 1;
        pendingOp_.reset();
        // The verification frontier counts ROB insertions; consuming
        // position zero with nothing verified spends the boundary claim,
        // and that dispatch may itself have evicted an L1 victim (L2-hit
        // fill), so the recorded line set must not outlive it.  The
        // prediction ring pops in lockstep so its head always tracks
        // upcoming insertion #0.
        if (scanVerified_ > 0) {
            scanVerified_ -= 1;
            if (posPredsHead_ < posPreds_.size() &&
                ++posPredsHead_ == posPreds_.size()) {
                posPreds_.clear();
                posPredsHead_ = 0;
            }
        } else {
            scanBoundaryKnown_ = false;
            scanLineCount_ = 0;
            lineMapStamp_ += 1;
            posPreds_.clear();
            posPredsHead_ = 0;
        }
    }

    robOccupancySum_ += count_;
    // Ticks executed directly (engine boundary ticks, legacy loop) keep
    // the batched-run tiling sound: the next run starts one past here.
    lastRunEnd_ = now + 1;

    // ---- CPI-stack attribution ----
    if (attrib::enabled()) {
        const CpiBucket bucket = retired_ != retired_before
                                     ? CpiBucket::Compute
                                     : stallBucket();
        cpi_[static_cast<unsigned>(bucket)] += 1;
    }
}

Core::CpiBucket
Core::stallBucket() const
{
    // Deliberately `now`-independent: fastForward() applies this same
    // classification to every skipped tick, so per-tick stepping and
    // event-driven skips must agree on the frozen ROB state alone (the
    // fast-forward report-equality contract).
    if (count_ == 0)
        return CpiBucket::DispatchStall;
    const RobEntry &head = rob_[head_];
    if (!head.ready && head.isLoad)
        return head.bulkWait ? CpiBucket::BulkWait : CpiBucket::CritWait;
    if (!head.ready)
        return CpiBucket::DispatchStall;
    return robFull() ? CpiBucket::RobFull : CpiBucket::DispatchStall;
}

Tick
Core::nextEventTick(Tick now) const
{
    Tick next = kTickNever;

    // Retire side: a ready head bounds the skip; an unready head retires
    // only after a wake, which is a backend event.
    if (count_ > 0) {
        const RobEntry &head = rob_[head_];
        if (head.ready) {
            next = std::max(now, head.readyAt);
            if (next == now)
                return now;
        }
    }

    // Dispatch side.
    if (!robFull()) {
        if (pendingOp_ && pendingOp_->isMem && pendingOp_->dependsOnPrev &&
            lastLoadPending(now)) {
            // Pointer-chase stall: dispatch resumes when the blocking
            // load's data lands — at its known readyAt, or via a wake
            // (again a backend event).
            const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
            if (e.ready)
                next = std::min(next, std::max(now, e.readyAt));
        } else {
            // Fetching fresh work, or retrying a hierarchy-blocked
            // access whose admission can change with any backend state:
            // something can happen every tick.
            return now;
        }
    }
    return next;
}

void
Core::fastForward(Tick from, Tick to)
{
    // Both stall shapes (ROB full, dependence wait) charge exactly one
    // dispatch stall per tick and leave count_ unchanged.
    const std::uint64_t n = to - from;
    dispatchStalls_ += n;
    robOccupancySum_ += static_cast<std::uint64_t>(count_) * n;
    // Closed-form CPI integration: the ROB state is frozen across the
    // skip, so every skipped tick classifies identically.
    if (attrib::enabled())
        cpi_[static_cast<unsigned>(stallBucket())] += n;
    lastRunEnd_ = to;
}

void
Core::stallForward(Tick from, Tick to)
{
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) [[unlikely]] {
        // Shadow verification (core_batch rule): replay the stall gap
        // per-tick — the ground truth by definition — and flag any
        // counter the closed form would have integrated differently.
        const std::uint64_t stalls0 = dispatchStalls_;
        const std::uint64_t occ0 = robOccupancySum_;
        const std::uint64_t ret0 = retired_;
        const std::uint64_t cnt = count_;
        const std::uint64_t n = to - from;
        for (Tick x = from; x < to; ++x)
            tick(x);
        if (dispatchStalls_ != stalls0 + n) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "dispatch_stalls", stalls0 + n,
                dispatchStalls_);
        }
        if (robOccupancySum_ != occ0 + cnt * n) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "rob_occupancy_sum", occ0 + cnt * n,
                robOccupancySum_);
        }
        if (retired_ != ret0) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "retired", ret0, retired_);
        }
        return;
    }
#endif
    fastForward(from, to);
}

std::uint64_t
Core::runUntil(Tick from, Tick to)
{
    if (lastRunEnd_ != kTickNever && from != lastRunEnd_) [[unlikely]]
        noteTilingBreak(from, to);
    Tick t = from;
    std::uint64_t stepped = 0;
    while (t < to) {
        const Tick ne = nextEventTick(t);
        if (ne > t) {
            // Pure stall until the next retire/dispatch opportunity (or
            // the run end): integrate in closed form, O(1).
            stallForward(t, std::min(ne, to));
            t = std::min(ne, to);
            continue;
        }
        // Active tick: replay it against the real hierarchy.  Every
        // access must resolve in the private L1 (replayGuard_).
        replayGuard_ = true;
        tick(t);
        replayGuard_ = false;
        stepped += 1;
        t += 1;
    }
    lastRunEnd_ = to;
    return stepped;
}

bool
Core::tryLeanCommit(Addr addr, std::uint16_t slot, Tick now, bool is_store,
                    cache::Hierarchy::AccessResult &res)
{
    // Lean commit applies only to dispatches the frontier verified: the
    // ring head (maintained in lockstep with scanVerified_) carries the
    // prediction for exactly this insertion.
    if (!leanCommit_ || scanVerified_ == 0 ||
        posPredsHead_ >= posPreds_.size())
        return false;
    const PosPred &pred = posPreds_[posPredsHead_];
    sim_assert(pred.isMem, "core ", unsigned{id_},
               ": prediction ring misaligned with the op stream");
    if (!hierarchy_.commitPrivateHit(id_, slot, addr, now, is_store,
                                     pred.line, res)) {
        leanFallbacks_ += 1;
        return false; // stale prediction: full path re-derives everything
    }
    leanCommits_ += 1;
    return true;
}

const workloads::MicroOp &
Core::peekOp(std::size_t idx)
{
    while (peeked_.size() - peekedHead_ <= idx)
        peeked_.push_back(source_());
    return peeked_[peekedHead_ + idx];
}

Tick
Core::nextBoundaryTick(Tick from)
{
    // The memo survives on-path execution (replay and boundary ticks
    // execute exactly the predicted stream), so it is valid until an
    // external event rewrites the prediction inputs — wake() and
    // invalidateBoundary() clear it — or until time advances past it.
    if (boundaryMemoValid_ && boundaryMemo_ >= from)
        return boundaryMemo_;
    boundaryMemo_ = predictBoundary(from);
    boundaryMemoValid_ = true;
    return boundaryMemo_;
}

void
Core::noteL1LineRemoved(Addr line)
{
    // An eviction can only move the boundary *earlier* when it takes
    // away a line the frontier counted on being private; any other
    // removal leaves every recorded claim — and therefore the memoized
    // boundary tick — intact.
    for (unsigned i = 0; i < scanLineCount_; ++i) {
        if (scanLines_[i] == line) {
            invalidateBoundary();
            return;
        }
    }
}

const workloads::MicroOp &
Core::posOp(std::uint32_t pos)
{
    // Upcoming insertion #pos: the blocked retry op first (it re-enters
    // dispatch before any fresh fetch), then the peek-ahead stream.
    if (pendingOp_) {
        if (pos == 0)
            return *pendingOp_;
        return peekOp(pos - 1);
    }
    return peekOp(pos);
}

bool
Core::compactScanLines()
{
    // Re-collect the lines the *unconsumed* frontier positions still
    // reference; lines whose every claiming position already dispatched
    // drop out and free slots.  Every surviving line was already in the
    // set (that is what verified the position), so this only shrinks —
    // and each survivor keeps the staleness token it was probed with.
    // The prediction ring carries each position's line address and
    // token, so this never re-reads the op stream.
    std::array<Addr, kScanLines> fresh{};
    std::array<cache::Cache::PredictedLine, kScanLines> freshPreds{};
    unsigned n = 0;
    const PosPred *preds = posPreds_.data() + posPredsHead_;
    for (std::uint32_t j = 0; j < scanVerified_; ++j) {
        if (!preds[j].isMem)
            continue;
        const Addr line = preds[j].lineAddr;
        bool dup = false;
        for (unsigned i = 0; i < n; ++i) {
            if (fresh[i] == line) {
                dup = true;
                break;
            }
        }
        if (!dup) {
            freshPreds[n] = preds[j].line;
            fresh[n++] = line;
        }
    }
    scanLines_ = fresh;
    scanLinePreds_ = freshPreds;
    scanLineCount_ = n;
    lineMapStamp_ += 1;
    for (unsigned i = 0; i < n; ++i)
        lineMapInsert(scanLines_[i], i);
    return n < kScanLines;
}

void
Core::resetPacingFold()
{
    offFresh_ = true;
    offBase_ = static_cast<std::uint32_t>(posPredsHead_);
    offTick_ = 0;
    offUsed_ = 0;
    offLoadReady_ = 0;
    offHaveLoad_ = false;
    offEarlyDepends_ = false;
}

void
Core::foldPacing(PosPred &pos, Tick l1_lat)
{
    // Exact per-iteration recurrence of predictBoundary's full pass,
    // minus the retire and live-load terms its preconditions exclude.
    if (offUsed_ == params_.width) {
        offTick_ += 1;
        offUsed_ = 0;
    }
    if (pos.depends) {
        if (offHaveLoad_) {
            if (offLoadReady_ > offTick_) {
                offTick_ = offLoadReady_;
                offUsed_ = 0;
            }
        } else {
            offEarlyDepends_ = true;
        }
    }
    // Ready-time bound of this insertion's ROB entry, recorded at the
    // same point the full pass records predReady_: a hit's data is
    // back l1Latency after dispatch, anything else one tick later.
    pos.readyOff = pos.isMem ? offTick_ + l1_lat : offTick_ + 1;
    offUsed_ += 1;
    if (pos.isLoad) {
        offHaveLoad_ = true;
        offLoadReady_ = offTick_ + l1_lat;
    }
}

void
Core::growFrontier()
{
    // Extend the verification frontier in op-stream order — insertion
    // order equals stream order regardless of timing, so line privacy
    // can be settled without simulating the pacing at all.  Probes are
    // paid once per (position, line): results live in scanVerified_ /
    // scanLines_ until an external removal of a recorded line (or the
    // boundary claim being spent) invalidates them.
    // A fresh window re-bases the incremental pacing offsets; growth
    // onto a partially-consumed ring refolds over the survivors first
    // (the fold is start-relative, so the surviving window folds the
    // same way a fresh one does), keeping the fast path armed at
    // O(remaining) per consumption burst instead of per prediction.
    const Tick l1Lat = hierarchy_.l1HitLatency();
    if (scanVerified_ == 0) {
        resetPacingFold();
    } else if (posPredsHead_ != offBase_) {
        resetPacingFold();
        PosPred *preds = posPreds_.data() + posPredsHead_;
        for (std::uint32_t j = 0; j < scanVerified_; ++j)
            foldPacing(preds[j], l1Lat);
    }
    while (!scanBoundaryKnown_ && scanVerified_ < kMaxFrontier) {
        const workloads::MicroOp &op = posOp(scanVerified_);
        PosPred pos;
        pos.isLoad = op.isMem && !op.isWrite;
        pos.depends = op.isMem && op.dependsOnPrev;
        if (op.isMem) {
            const Addr line = lineBase(op.addr);
            int known = lineMapFind(line);
            if (known < 0) {
                if (scanLineCount_ == kScanLines && !compactScanLines())
                    return; // line budget exhausted: stop at this edge
                cache::Cache::PredictedLine pred;
                if (!hierarchy_.privateHitPredict(id_, op.addr, pred)) {
                    scanBoundaryKnown_ = true;
                    return; // the op at scanVerified_ leaves the L1
                }
                scanLines_[scanLineCount_] = line;
                scanLinePreds_[scanLineCount_] = pred;
                known = static_cast<int>(scanLineCount_++);
                lineMapInsert(line, static_cast<unsigned>(known));
            }
            pos.isMem = true;
            pos.lineAddr = line;
            pos.line = scanLinePreds_[static_cast<unsigned>(known)];
        }
        // Fold the position into the start-relative dispatch schedule.
        foldPacing(pos, l1Lat);
        posPreds_.push_back(pos);
        scanVerified_ += 1;
    }
}

Tick
Core::predictBoundary(Tick from)
{
    growFrontier();

    // Earliest tick anything at all can happen; the first non-private
    // dispatch cannot precede it.  kTickNever: only a wake unblocks.
    const Tick start = nextEventTick(from);
    if (start == kTickNever)
        return kTickNever;

    // Arithmetic lower bound on when insertion #scanVerified_ (the
    // boundary op when known, the frontier edge otherwise) can
    // dispatch.  One pass over the future ROB order paces retires and
    // dispatches at `width` per tick, holds each insertion until the
    // ROB has space for it (its freeing retire cannot precede the
    // freed entry's data), and holds dependent loads until their
    // producer's data is back.  Entries only a wake can ready
    // propagate kTickNever — the wake path invalidates the memo and
    // re-predicts.  Every constraint here is a relaxation of tick()'s,
    // so whatever is omitted only makes the real tick later: the bound
    // is never late, and a conservative-early event merely fires
    // inside the run, replays the prefix, and re-arms from there.
    const Tick l1Lat = hierarchy_.l1HitLatency();
    const std::uint32_t target = scanVerified_;

    // O(1) ROB-occupancy shortcut: when the window can fill the ROB
    // and a parked load sits within its retire demand, the boundary
    // dispatch is pinned behind that load's wake — exactly the
    // kTickNever the full pass would walk to (its retire schedule
    // consumes ready-time bounds in ROB order and reaches the parked
    // entry before any dispatch past it can be paced).  The wake
    // invalidates the memo and re-predicts.
    if (static_cast<std::uint64_t>(count_) + target >= params_.robSize) {
        for (const std::uint16_t slot : parkedSlots_) {
            const unsigned p = (slot + params_.robSize - head_) %
                               params_.robSize;
            if (p + params_.robSize <= count_ + target)
                return kTickNever;
        }
    }

    // Live last-load dependence (mirrors lastLoadPending()): until an
    // in-window load takes over, dependent mem ops wait on it.
    bool liveLoadPending = false;
    bool liveLoadNever = false;
    Tick liveLoadReady = 0;
    if (lastLoadSlot_ >= 0) {
        const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
        if (e.valid && e.seq == lastLoadSeq_) {
            liveLoadPending = true;
            if (e.ready)
                liveLoadReady = std::max(start, e.readyAt);
            else
                liveLoadNever = true;
        }
    }

    // The boundary op (position `target`, never verified, hence never
    // in the ring) contributes only its dependence flag.  posOp()
    // draws it from the source if growFrontier stopped before it.
    const workloads::MicroOp &bop = posOp(target);
    const bool boundaryDepends = bop.isMem && bop.dependsOnPrev;

    // Fast path on the incremental schedule growFrontier kept: B0 (the
    // fold through the boundary op's own checks) is the full pass with
    // retire pacing relaxed away — exact outright when the ROB cannot
    // fill within the window.  When it can fill, pair B0 with R, a
    // standalone walk of the retire schedule up to the boundary's
    // demand: the retire schedule is dispatch-independent, its live
    // entries are all ready (a parked entry inside the demand is
    // caught by the occupancy shortcut above), and demand reaching
    // into the window itself reads the fold's recorded per-position
    // ready bounds (PosPred::readyOff).  max(B0, R) ≥ both bounds the
    // full pass enforces at j == target; it omits only mid-window
    // retire-reset cascades and — for windows that fill the ROB — the
    // retire holds folded back into in-window ready times, so it is
    // never late; a conservative-early result costs one extra in-run
    // event, not correctness.  The live last-load stall must not bite
    // mid-window (data back by `start`, or nothing before the first
    // in-window load depends on it) — otherwise fall through to the
    // full pass.
    if (offFresh_ && posPredsHead_ == offBase_) {
        const bool liveMid = liveLoadPending && offEarlyDepends_;
        if (liveMid && liveLoadNever)
            return kTickNever; // a pre-load depends-op waits on a wake
        if (!liveMid || liveLoadReady <= start) {
            Tick t = offTick_;
            if (offUsed_ == params_.width)
                t += 1;
            Tick res = start + t;
            if (boundaryDepends) {
                if (offHaveLoad_) {
                    if (offLoadReady_ > t)
                        res = start + offLoadReady_;
                } else if (liveLoadPending) {
                    if (liveLoadNever)
                        return kTickNever;
                    if (liveLoadReady > res)
                        res = liveLoadReady;
                }
            }
            if (static_cast<std::uint64_t>(count_) + target >=
                params_.robSize) {
                const auto demandF = static_cast<std::uint32_t>(
                    count_ + target + 1 - params_.robSize);
                const PosPred *preds =
                    posPreds_.data() + posPredsHead_;
                Tick rTick = start;
                unsigned rUsed = 0;
                for (std::uint32_t p = 0; p < demandF; ++p) {
                    Tick rt;
                    if (p < count_) {
                        unsigned slot = head_ + p;
                        if (slot >= params_.robSize)
                            slot -= params_.robSize;
                        const RobEntry &e = rob_[slot];
                        sim_assert(e.ready, "core ", unsigned{id_},
                                   ": parked entry inside retire "
                                   "demand escaped the occupancy "
                                   "shortcut");
                        rt = std::max(start, e.readyAt);
                    } else {
                        // In-window insertion: the fold's recorded
                        // ready bound (never beyond the ring — the
                        // demand outruns the live ROB by at most
                        // target + 1 - robSize <= scanVerified_).
                        rt = start + preds[p - count_].readyOff;
                    }
                    if (rUsed == params_.width) {
                        rTick += 1;
                        rUsed = 0;
                    }
                    if (rt > rTick) {
                        rTick = rt;
                        rUsed = 0;
                    }
                    rUsed += 1;
                }
                if (rTick > res)
                    res = rTick;
            }
            return res;
        }
    }

    // Retire schedule: ROB order, at most `width` per tick, none
    // before `start` (no tick executes earlier).  predReady_ collects
    // the in-window insertions' ready-time bounds as their dispatch
    // ticks are fixed; only insertions at least robSize positions back
    // are ever consumed, so production stays ahead of consumption.
    std::uint32_t retDone = 0;
    std::uint32_t retIdx = 0;
    Tick retTick = start;
    unsigned retUsed = 0;
    predReady_.clear();
    bool never = false;

    const auto readyLB = [&](std::uint32_t pos) -> Tick {
        if (pos < count_) {
            unsigned slot = head_ + pos;
            if (slot >= params_.robSize)
                slot -= params_.robSize;
            const RobEntry &e = rob_[slot];
            if (!e.ready) {
                never = true; // parked load: only a wake readies it
                return 0;
            }
            return std::max(start, e.readyAt);
        }
        return predReady_[pos - count_];
    };
    const auto retireLB = [&](std::uint32_t r) -> Tick {
        while (retDone < r) {
            const Tick rt = readyLB(retIdx);
            if (never)
                return 0;
            if (retUsed == params_.width) {
                retTick += 1;
                retUsed = 0;
            }
            if (rt > retTick) {
                retTick = rt;
                retUsed = 0;
            }
            retUsed += 1;
            retDone += 1;
            retIdx += 1;
        }
        return retTick;
    };

    // growFrontier() recorded each verified position's pacing flags in
    // the prediction ring, so the pass below never re-reads the op
    // stream.
    const PosPred *preds = posPreds_.data() + posPredsHead_;

    // Retire pacing only ever gates a dispatch once the window can fill
    // the ROB; below that threshold the retire-schedule bookkeeping
    // (predReady_, retireLB) is provably dead and skipped wholesale.
    // The retire walk consumes in-window ready bounds (predReady_) only
    // once its demand outruns the live ROB, which needs a window of at
    // least robSize positions — shorter windows skip the collection.
    const bool canFill =
        static_cast<std::uint64_t>(count_) + target >= params_.robSize;
    const bool needPredReady = target >= params_.robSize;

    Tick dispTick = start;
    unsigned dispUsed = 0;
    Tick lastLoadReady = 0;
    bool haveLoad = false;
    for (std::uint32_t j = 0; j <= target; ++j) {
        if (dispUsed == params_.width) {
            dispTick += 1;
            dispUsed = 0;
        }
        if (canFill) {
            const std::uint64_t occupied = count_ + j;
            if (occupied >= params_.robSize) {
                const Tick rT = retireLB(static_cast<std::uint32_t>(
                    occupied + 1 - params_.robSize));
                if (never)
                    return kTickNever;
                if (rT > dispTick) {
                    dispTick = rT;
                    dispUsed = 0;
                }
            }
        }
        const bool depends =
            j == target ? boundaryDepends : preds[j].depends;
        if (depends) {
            if (haveLoad) {
                if (lastLoadReady > dispTick) {
                    dispTick = lastLoadReady;
                    dispUsed = 0;
                }
            } else if (liveLoadPending) {
                if (liveLoadNever)
                    return kTickNever;
                if (liveLoadReady > dispTick) {
                    dispTick = liveLoadReady;
                    dispUsed = 0;
                }
            }
        }
        if (j == target)
            return dispTick;
        dispUsed += 1;
        if (needPredReady)
            predReady_.push_back(preds[j].isMem ? dispTick + l1Lat
                                                : dispTick + 1);
        if (preds[j].isLoad) {
            haveLoad = true;
            lastLoadReady = dispTick + l1Lat;
        }
    }
    return dispTick; // unreachable: the loop returns at j == target
}

void
Core::noteTilingBreak(Tick from, Tick to) const
{
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) {
        check::Checker::instance().coreRunTiling(id_, from, to,
                                                 lastRunEnd_);
        return;
    }
#endif
    sim_assert(false, "core ", unsigned{id_}, " batched run [", from, ", ",
               to, ") does not start at the previous run end ",
               lastRunEnd_);
}

void
Core::noteReplayAccess(const cache::Hierarchy::AccessResult &res,
                       Tick now) const
{
    if (res.outcome == cache::Hierarchy::Outcome::Ready &&
        res.level == HitLevel::L1)
        return;
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) {
        check::Checker::instance().coreReplayEscape(
            id_, now, static_cast<unsigned>(res.outcome),
            static_cast<unsigned>(res.level));
        return;
    }
#endif
    sim_assert(false, "core ", unsigned{id_},
               " batched replay escaped the private L1 at tick ", now);
}

void
Core::wake(std::uint16_t slot, Tick now)
{
    RobEntry &entry = rob_[slot];
    sim_assert(entry.valid && entry.isLoad && !entry.ready,
               "wake of slot ", slot, " in unexpected state");
    entry.ready = true;
    entry.readyAt = now;
    for (std::size_t i = 0; i < parkedSlots_.size(); ++i) {
        if (parkedSlots_[i] == slot) {
            parkedSlots_[i] = parkedSlots_.back();
            parkedSlots_.pop_back();
            break;
        }
    }
    // The prediction modelled this slot as never becoming ready, so a
    // delivery at or after the predicted boundary changes nothing the
    // simulated interval [from, boundary) depends on — the memo holds.
    // Earlier delivery can pull retires (and with them the boundary)
    // forward, so the memo must go; the verification frontier survives
    // either way, because line-privacy claims are wake-independent.
    if (!boundaryMemoValid_ || now < boundaryMemo_)
        boundaryMemoValid_ = false;
}

void
Core::markBulkWait(std::uint16_t slot)
{
    RobEntry &entry = rob_[slot];
    if (entry.valid && entry.isLoad && !entry.ready)
        entry.bulkWait = true;
}

void
Core::resetStats(Tick now)
{
    retiredAtWindowStart_ = retired_;
    windowStart_ = now;
    robOccupancySum_ = 0;
    dispatchStalls_ = 0;
    cpi_.fill(0);
}

double
Core::ipc(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    return static_cast<double>(retired_ - retiredAtWindowStart_) /
           static_cast<double>(now - windowStart_);
}

void
Core::registerStats(StatRegistry &registry) const
{
    StatGroup &g =
        registry.group("cpu/core/" + std::to_string(unsigned{id_}));
    g.addGauge("retired",
               [this] { return static_cast<double>(retired_); });
    g.addGauge("retired_in_window", [this] {
        return static_cast<double>(retiredInWindow());
    });
    g.addGauge("dispatch_stalls", [this] {
        return static_cast<double>(dispatchStalls_);
    });
    g.addGauge("rob_occupancy_sum", [this] {
        return static_cast<double>(robOccupancySum_);
    });
    const auto cpi = [this](CpiBucket bucket) {
        return [this, bucket] {
            return static_cast<double>(cpiCycles(bucket));
        };
    };
    g.addGauge("cpi_compute", cpi(CpiBucket::Compute));
    g.addGauge("cpi_crit_wait", cpi(CpiBucket::CritWait));
    g.addGauge("cpi_bulk_wait", cpi(CpiBucket::BulkWait));
    g.addGauge("cpi_rob_full", cpi(CpiBucket::RobFull));
    g.addGauge("cpi_dispatch_stall", cpi(CpiBucket::DispatchStall));
}

} // namespace hetsim::cpu
