#include "cpu/core.hh"

#include <algorithm>

#include "check/checker.hh"
#include "common/attrib.hh"
#include "common/log.hh"

namespace hetsim::cpu
{

Core::Core(std::uint8_t id, const Params &params, OpSource source,
           cache::Hierarchy &hierarchy)
    : id_(id), params_(params), source_(std::move(source)),
      hierarchy_(hierarchy)
{
    sim_assert(params_.robSize > 0 && params_.width > 0,
               "core needs ROB entries and width");
    sim_assert(source_, "core needs an op source");
    rob_.resize(params_.robSize);
}

bool
Core::lastLoadPending(Tick now) const
{
    if (lastLoadSlot_ < 0)
        return false;
    const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
    if (!e.valid || e.seq != lastLoadSeq_)
        return false; // that load already retired
    return !e.ready || e.readyAt > now;
}

void
Core::tick(Tick now)
{
    const std::uint64_t retired_before = retired_;

    // ---- retire ----
    for (unsigned w = 0; w < params_.width && count_ > 0; ++w) {
        RobEntry &head = rob_[head_];
        if (!head.ready || head.readyAt > now)
            break;
        head.valid = false;
        head_ = (head_ + 1) % params_.robSize;
        count_ -= 1;
        retired_ += 1;
    }

    // ---- dispatch ----
    for (unsigned w = 0; w < params_.width; ++w) {
        if (robFull()) {
            dispatchStalls_ += 1;
            break;
        }
        workloads::MicroOp op;
        if (pendingOp_) {
            op = *pendingOp_;
        } else if (peekedHead_ < peeked_.size()) {
            op = peeked_[peekedHead_++];
            if (peekedHead_ == peeked_.size()) {
                peeked_.clear();
                peekedHead_ = 0;
            }
        } else {
            op = source_();
        }

        if (op.isMem && op.dependsOnPrev && lastLoadPending(now)) {
            pendingOp_ = op;
            dispatchStalls_ += 1;
            break;
        }

        const std::uint16_t slot = static_cast<std::uint16_t>(tail_);
        RobEntry entry;
        entry.valid = true;
        entry.seq = ++seqCounter_;

        if (!op.isMem) {
            entry.ready = true;
            entry.readyAt = now + 1;
        } else if (op.isWrite) {
            const auto res = hierarchy_.store(id_, op.addr, now);
            if (replayGuard_) [[unlikely]]
                noteReplayAccess(res, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.ready = true;
            entry.readyAt = res.readyAt;
        } else {
            const auto res = hierarchy_.load(id_, slot, op.addr, now);
            if (replayGuard_) [[unlikely]]
                noteReplayAccess(res, now);
            if (res.outcome == cache::Hierarchy::Outcome::Blocked) {
                pendingOp_ = op;
                dispatchStalls_ += 1;
                break;
            }
            entry.isLoad = true;
            if (res.outcome == cache::Hierarchy::Outcome::Ready) {
                entry.ready = true;
                entry.readyAt = res.readyAt;
            } else {
                entry.ready = false;
                entry.bulkWait = res.bulkWait;
            }
            lastLoadSlot_ = static_cast<int>(slot);
            lastLoadSeq_ = entry.seq;
        }

        rob_[tail_] = entry;
        tail_ = (tail_ + 1) % params_.robSize;
        count_ += 1;
        pendingOp_.reset();
        // The verification frontier counts ROB insertions; consuming
        // position zero with nothing verified spends the boundary claim,
        // and that dispatch may itself have evicted an L1 victim (L2-hit
        // fill), so the recorded line set must not outlive it.
        if (scanVerified_ > 0) {
            scanVerified_ -= 1;
        } else {
            scanBoundaryKnown_ = false;
            scanLineCount_ = 0;
        }
    }

    robOccupancySum_ += count_;
    // Ticks executed directly (engine boundary ticks, legacy loop) keep
    // the batched-run tiling sound: the next run starts one past here.
    lastRunEnd_ = now + 1;

    // ---- CPI-stack attribution ----
    if (attrib::enabled()) {
        const CpiBucket bucket = retired_ != retired_before
                                     ? CpiBucket::Compute
                                     : stallBucket();
        cpi_[static_cast<unsigned>(bucket)] += 1;
    }
}

Core::CpiBucket
Core::stallBucket() const
{
    // Deliberately `now`-independent: fastForward() applies this same
    // classification to every skipped tick, so per-tick stepping and
    // event-driven skips must agree on the frozen ROB state alone (the
    // fast-forward report-equality contract).
    if (count_ == 0)
        return CpiBucket::DispatchStall;
    const RobEntry &head = rob_[head_];
    if (!head.ready && head.isLoad)
        return head.bulkWait ? CpiBucket::BulkWait : CpiBucket::CritWait;
    if (!head.ready)
        return CpiBucket::DispatchStall;
    return robFull() ? CpiBucket::RobFull : CpiBucket::DispatchStall;
}

Tick
Core::nextEventTick(Tick now) const
{
    Tick next = kTickNever;

    // Retire side: a ready head bounds the skip; an unready head retires
    // only after a wake, which is a backend event.
    if (count_ > 0) {
        const RobEntry &head = rob_[head_];
        if (head.ready) {
            next = std::max(now, head.readyAt);
            if (next == now)
                return now;
        }
    }

    // Dispatch side.
    if (!robFull()) {
        if (pendingOp_ && pendingOp_->isMem && pendingOp_->dependsOnPrev &&
            lastLoadPending(now)) {
            // Pointer-chase stall: dispatch resumes when the blocking
            // load's data lands — at its known readyAt, or via a wake
            // (again a backend event).
            const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
            if (e.ready)
                next = std::min(next, std::max(now, e.readyAt));
        } else {
            // Fetching fresh work, or retrying a hierarchy-blocked
            // access whose admission can change with any backend state:
            // something can happen every tick.
            return now;
        }
    }
    return next;
}

void
Core::fastForward(Tick from, Tick to)
{
    // Both stall shapes (ROB full, dependence wait) charge exactly one
    // dispatch stall per tick and leave count_ unchanged.
    const std::uint64_t n = to - from;
    dispatchStalls_ += n;
    robOccupancySum_ += static_cast<std::uint64_t>(count_) * n;
    // Closed-form CPI integration: the ROB state is frozen across the
    // skip, so every skipped tick classifies identically.
    if (attrib::enabled())
        cpi_[static_cast<unsigned>(stallBucket())] += n;
    lastRunEnd_ = to;
}

void
Core::stallForward(Tick from, Tick to)
{
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) [[unlikely]] {
        // Shadow verification (core_batch rule): replay the stall gap
        // per-tick — the ground truth by definition — and flag any
        // counter the closed form would have integrated differently.
        const std::uint64_t stalls0 = dispatchStalls_;
        const std::uint64_t occ0 = robOccupancySum_;
        const std::uint64_t ret0 = retired_;
        const std::uint64_t cnt = count_;
        const std::uint64_t n = to - from;
        for (Tick x = from; x < to; ++x)
            tick(x);
        if (dispatchStalls_ != stalls0 + n) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "dispatch_stalls", stalls0 + n,
                dispatchStalls_);
        }
        if (robOccupancySum_ != occ0 + cnt * n) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "rob_occupancy_sum", occ0 + cnt * n,
                robOccupancySum_);
        }
        if (retired_ != ret0) {
            check::Checker::instance().coreRunAccounting(
                id_, from, to, "retired", ret0, retired_);
        }
        return;
    }
#endif
    fastForward(from, to);
}

std::uint64_t
Core::runUntil(Tick from, Tick to)
{
    if (lastRunEnd_ != kTickNever && from != lastRunEnd_) [[unlikely]]
        noteTilingBreak(from, to);
    Tick t = from;
    std::uint64_t stepped = 0;
    while (t < to) {
        const Tick ne = nextEventTick(t);
        if (ne > t) {
            // Pure stall until the next retire/dispatch opportunity (or
            // the run end): integrate in closed form, O(1).
            stallForward(t, std::min(ne, to));
            t = std::min(ne, to);
            continue;
        }
        // Active tick: replay it against the real hierarchy.  Every
        // access must resolve in the private L1 (replayGuard_).
        replayGuard_ = true;
        tick(t);
        replayGuard_ = false;
        stepped += 1;
        t += 1;
    }
    lastRunEnd_ = to;
    return stepped;
}

const workloads::MicroOp &
Core::peekOp(std::size_t idx)
{
    while (peeked_.size() - peekedHead_ <= idx)
        peeked_.push_back(source_());
    return peeked_[peekedHead_ + idx];
}

Tick
Core::nextBoundaryTick(Tick from)
{
    // The memo survives on-path execution (replay and boundary ticks
    // execute exactly the predicted stream), so it is valid until an
    // external event rewrites the prediction inputs — wake() and
    // invalidateBoundary() clear it — or until time advances past it.
    if (boundaryMemoValid_ && boundaryMemo_ >= from)
        return boundaryMemo_;
    boundaryMemo_ = predictBoundary(from);
    boundaryMemoValid_ = true;
    return boundaryMemo_;
}

void
Core::noteL1LineRemoved(Addr line)
{
    // An eviction can only move the boundary *earlier* when it takes
    // away a line the frontier counted on being private; any other
    // removal leaves every recorded claim — and therefore the memoized
    // boundary tick — intact.
    for (unsigned i = 0; i < scanLineCount_; ++i) {
        if (scanLines_[i] == line) {
            invalidateBoundary();
            return;
        }
    }
}

const workloads::MicroOp &
Core::posOp(std::uint32_t pos)
{
    // Upcoming insertion #pos: the blocked retry op first (it re-enters
    // dispatch before any fresh fetch), then the peek-ahead stream.
    if (pendingOp_) {
        if (pos == 0)
            return *pendingOp_;
        return peekOp(pos - 1);
    }
    return peekOp(pos);
}

bool
Core::compactScanLines()
{
    // Re-collect the lines the *unconsumed* frontier positions still
    // reference; lines whose every claiming position already dispatched
    // drop out and free slots.  Every surviving line was already in the
    // set (that is what verified the position), so this only shrinks.
    std::array<Addr, kScanLines> fresh;
    unsigned n = 0;
    for (std::uint32_t j = 0; j < scanVerified_; ++j) {
        const workloads::MicroOp &op = posOp(j);
        if (!op.isMem)
            continue;
        const Addr line = lineBase(op.addr);
        bool dup = false;
        for (unsigned i = 0; i < n; ++i) {
            if (fresh[i] == line) {
                dup = true;
                break;
            }
        }
        if (!dup)
            fresh[n++] = line;
    }
    scanLines_ = fresh;
    scanLineCount_ = n;
    return n < kScanLines;
}

void
Core::growFrontier()
{
    // Extend the verification frontier in op-stream order — insertion
    // order equals stream order regardless of timing, so line privacy
    // can be settled without simulating the pacing at all.  Probes are
    // paid once per (position, line): results live in scanVerified_ /
    // scanLines_ until an external removal of a recorded line (or the
    // boundary claim being spent) invalidates them.
    while (!scanBoundaryKnown_ && scanVerified_ < kMaxFrontier) {
        const workloads::MicroOp &op = posOp(scanVerified_);
        if (op.isMem) {
            const Addr line = lineBase(op.addr);
            bool known = false;
            for (unsigned i = 0; i < scanLineCount_; ++i) {
                if (scanLines_[i] == line) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                if (scanLineCount_ == kScanLines && !compactScanLines())
                    return; // line budget exhausted: stop at this edge
                if (!hierarchy_.privateHit(id_, op.addr)) {
                    scanBoundaryKnown_ = true;
                    return; // the op at scanVerified_ leaves the L1
                }
                scanLines_[scanLineCount_++] = line;
            }
        }
        scanVerified_ += 1;
    }
}

Tick
Core::predictBoundary(Tick from)
{
    growFrontier();

    // Earliest tick anything at all can happen; the first non-private
    // dispatch cannot precede it.  kTickNever: only a wake unblocks.
    const Tick start = nextEventTick(from);
    if (start == kTickNever)
        return kTickNever;

    // Arithmetic lower bound on when insertion #scanVerified_ (the
    // boundary op when known, the frontier edge otherwise) can
    // dispatch.  One pass over the future ROB order paces retires and
    // dispatches at `width` per tick, holds each insertion until the
    // ROB has space for it (its freeing retire cannot precede the
    // freed entry's data), and holds dependent loads until their
    // producer's data is back.  Entries only a wake can ready
    // propagate kTickNever — the wake path invalidates the memo and
    // re-predicts.  Every constraint here is a relaxation of tick()'s,
    // so whatever is omitted only makes the real tick later: the bound
    // is never late, and a conservative-early event merely fires
    // inside the run, replays the prefix, and re-arms from there.
    const Tick l1Lat = hierarchy_.l1HitLatency();
    const std::uint32_t target = scanVerified_;

    // Retire schedule: ROB order, at most `width` per tick, none
    // before `start` (no tick executes earlier).  predReady_ collects
    // the in-window insertions' ready-time bounds as their dispatch
    // ticks are fixed; only insertions at least robSize positions back
    // are ever consumed, so production stays ahead of consumption.
    std::uint32_t retDone = 0;
    std::uint32_t retIdx = 0;
    Tick retTick = start;
    unsigned retUsed = 0;
    predReady_.clear();
    bool never = false;

    const auto readyLB = [&](std::uint32_t pos) -> Tick {
        if (pos < count_) {
            unsigned slot = head_ + pos;
            if (slot >= params_.robSize)
                slot -= params_.robSize;
            const RobEntry &e = rob_[slot];
            if (!e.ready) {
                never = true; // parked load: only a wake readies it
                return 0;
            }
            return std::max(start, e.readyAt);
        }
        return predReady_[pos - count_];
    };
    const auto retireLB = [&](std::uint32_t r) -> Tick {
        while (retDone < r) {
            const Tick rt = readyLB(retIdx);
            if (never)
                return 0;
            if (retUsed == params_.width) {
                retTick += 1;
                retUsed = 0;
            }
            if (rt > retTick) {
                retTick = rt;
                retUsed = 0;
            }
            retUsed += 1;
            retDone += 1;
            retIdx += 1;
        }
        return retTick;
    };

    // Live last-load dependence (mirrors lastLoadPending()): until an
    // in-window load takes over, dependent mem ops wait on it.
    bool liveLoadPending = false;
    bool liveLoadNever = false;
    Tick liveLoadReady = 0;
    if (lastLoadSlot_ >= 0) {
        const RobEntry &e = rob_[static_cast<unsigned>(lastLoadSlot_)];
        if (e.valid && e.seq == lastLoadSeq_) {
            liveLoadPending = true;
            if (e.ready)
                liveLoadReady = std::max(start, e.readyAt);
            else
                liveLoadNever = true;
        }
    }

    // growFrontier() already drew the stream through the window, so the
    // loop can index peeked_ directly instead of re-checking per op
    // (posOp would); the one position it may not have drawn — the
    // frontier edge itself — is forced here, before the pointer is
    // taken (peekOp can reallocate the buffer).
    const workloads::MicroOp *pend =
        pendingOp_ ? &*pendingOp_ : nullptr;
    if (!pend || target > 0)
        (void)peekOp(pend ? target - 1 : target);
    const workloads::MicroOp *stream = peeked_.data() + peekedHead_;

    Tick dispTick = start;
    unsigned dispUsed = 0;
    Tick lastLoadReady = 0;
    bool haveLoad = false;
    for (std::uint32_t j = 0; j <= target; ++j) {
        if (dispUsed == params_.width) {
            dispTick += 1;
            dispUsed = 0;
        }
        const std::uint64_t occupied = count_ + j;
        if (occupied >= params_.robSize) {
            const Tick rT = retireLB(static_cast<std::uint32_t>(
                occupied + 1 - params_.robSize));
            if (never)
                return kTickNever;
            if (rT > dispTick) {
                dispTick = rT;
                dispUsed = 0;
            }
        }
        const workloads::MicroOp &op =
            pend ? (j == 0 ? *pend : stream[j - 1]) : stream[j];
        if (op.isMem && op.dependsOnPrev) {
            if (haveLoad) {
                if (lastLoadReady > dispTick) {
                    dispTick = lastLoadReady;
                    dispUsed = 0;
                }
            } else if (liveLoadPending) {
                if (liveLoadNever)
                    return kTickNever;
                if (liveLoadReady > dispTick) {
                    dispTick = liveLoadReady;
                    dispUsed = 0;
                }
            }
        }
        if (j == target)
            return dispTick;
        dispUsed += 1;
        predReady_.push_back(op.isMem ? dispTick + l1Lat : dispTick + 1);
        if (op.isMem && !op.isWrite) {
            haveLoad = true;
            lastLoadReady = dispTick + l1Lat;
        }
    }
    return dispTick; // unreachable: the loop returns at j == target
}

void
Core::noteTilingBreak(Tick from, Tick to) const
{
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) {
        check::Checker::instance().coreRunTiling(id_, from, to,
                                                 lastRunEnd_);
        return;
    }
#endif
    sim_assert(false, "core ", unsigned{id_}, " batched run [", from, ", ",
               to, ") does not start at the previous run end ",
               lastRunEnd_);
}

void
Core::noteReplayAccess(const cache::Hierarchy::AccessResult &res,
                       Tick now) const
{
    if (res.outcome == cache::Hierarchy::Outcome::Ready &&
        res.level == HitLevel::L1)
        return;
#ifndef HETSIM_DISABLE_CHECK
    if (check::detail::g_checkEnabled) {
        check::Checker::instance().coreReplayEscape(
            id_, now, static_cast<unsigned>(res.outcome),
            static_cast<unsigned>(res.level));
        return;
    }
#endif
    sim_assert(false, "core ", unsigned{id_},
               " batched replay escaped the private L1 at tick ", now);
}

void
Core::wake(std::uint16_t slot, Tick now)
{
    RobEntry &entry = rob_[slot];
    sim_assert(entry.valid && entry.isLoad && !entry.ready,
               "wake of slot ", slot, " in unexpected state");
    entry.ready = true;
    entry.readyAt = now;
    // The prediction modelled this slot as never becoming ready, so a
    // delivery at or after the predicted boundary changes nothing the
    // simulated interval [from, boundary) depends on — the memo holds.
    // Earlier delivery can pull retires (and with them the boundary)
    // forward, so the memo must go; the verification frontier survives
    // either way, because line-privacy claims are wake-independent.
    if (!boundaryMemoValid_ || now < boundaryMemo_)
        boundaryMemoValid_ = false;
}

void
Core::markBulkWait(std::uint16_t slot)
{
    RobEntry &entry = rob_[slot];
    if (entry.valid && entry.isLoad && !entry.ready)
        entry.bulkWait = true;
}

void
Core::resetStats(Tick now)
{
    retiredAtWindowStart_ = retired_;
    windowStart_ = now;
    robOccupancySum_ = 0;
    dispatchStalls_ = 0;
    cpi_.fill(0);
}

double
Core::ipc(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    return static_cast<double>(retired_ - retiredAtWindowStart_) /
           static_cast<double>(now - windowStart_);
}

void
Core::registerStats(StatRegistry &registry) const
{
    StatGroup &g =
        registry.group("cpu/core/" + std::to_string(unsigned{id_}));
    g.addGauge("retired",
               [this] { return static_cast<double>(retired_); });
    g.addGauge("retired_in_window", [this] {
        return static_cast<double>(retiredInWindow());
    });
    g.addGauge("dispatch_stalls", [this] {
        return static_cast<double>(dispatchStalls_);
    });
    g.addGauge("rob_occupancy_sum", [this] {
        return static_cast<double>(robOccupancySum_);
    });
    const auto cpi = [this](CpiBucket bucket) {
        return [this, bucket] {
            return static_cast<double>(cpiCycles(bucket));
        };
    };
    g.addGauge("cpi_compute", cpi(CpiBucket::Compute));
    g.addGauge("cpi_crit_wait", cpi(CpiBucket::CritWait));
    g.addGauge("cpi_bulk_wait", cpi(CpiBucket::BulkWait));
    g.addGauge("cpi_rob_full", cpi(CpiBucket::RobFull));
    g.addGauge("cpi_dispatch_stall", cpi(CpiBucket::DispatchStall));
}

} // namespace hetsim::cpu
