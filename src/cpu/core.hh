/**
 * @file
 * ROB-occupancy out-of-order core model (paper Table 1: 8 cores, 3.2 GHz,
 * 64-entry ROB, 4-wide fetch/dispatch/execute/retire).
 *
 * Each cycle the core retires up to `width` completed instructions from
 * the ROB head and dispatches up to `width` new micro-ops from its
 * workload generator.  Loads access the cache hierarchy at dispatch and
 * park in the ROB until data arrives — for LLC misses that is the moment
 * the *critical word* is delivered (possibly tens of cycles before the
 * rest of the line, which is the paper's mechanism).  Pointer-chasing
 * loads (dependsOnPrev) cannot dispatch until the previous load's data
 * returns, serialising misses the way dependent chains do in a real OoO
 * window.
 */

#ifndef HETSIM_CPU_CORE_HH
#define HETSIM_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include <functional>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "workloads/pattern.hh"

namespace hetsim::cpu
{

class Core
{
  public:
    struct Params
    {
        unsigned robSize = 64; // Table 1
        unsigned width = 4;    // Table 1
    };

    /** Source of the core's instruction stream (a workload generator
     *  in the full system; a scripted queue in tests). */
    using OpSource = std::function<workloads::MicroOp()>;

    Core(std::uint8_t id, const Params &params, OpSource source,
         cache::Hierarchy &hierarchy);

    /** Advance one CPU cycle. */
    void tick(Tick now);

    /**
     * Earliest tick >= now at which tick() can retire or dispatch
     * anything, given the ROB state left by the last tick().  Returns
     * @p now whenever the core could make progress (fetching new work,
     * retrying a hierarchy-blocked access), a wake-independent ready
     * time when it is purely waiting, and kTickNever when only a load
     * wake (a backend event) can unblock it.
     */
    Tick nextEventTick(Tick now) const;

    /**
     * Account the skipped ticks [from, to).  Only legal when the core is
     * fully stalled across the interval (nextEventTick() >= to): each
     * skipped tick charges one dispatch stall and samples the unchanged
     * ROB occupancy, exactly as per-tick stepping would.
     */
    void fastForward(Tick from, Tick to);

    /** Deliver data to a parked load (called via Hierarchy's WakeFn). */
    void wake(std::uint16_t slot, Tick now);

    /** Tag a parked load as waiting on the bulk fragment (called via
     *  Hierarchy's BulkMarkFn); CPI-stack attribution only. */
    void markBulkWait(std::uint16_t slot);

    std::uint8_t id() const { return id_; }

    /**
     * CPI-stack cycle attribution (DESIGN.md section 12).  Every core
     * cycle of a measurement window lands in exactly one bucket, whether
     * it was stepped or fast-forwarded, so the bucket sum equals the
     * window's tick count (gated by HETSIM_ATTRIB).
     */
    enum class CpiBucket : std::uint8_t {
        Compute,       ///< at least one instruction retired
        CritWait,      ///< head load parked, fast word still to come
        BulkWait,      ///< head load parked, only the bulk line helps
        RobFull,       ///< head in flight (non-load), ROB full
        DispatchStall, ///< dependence wait / blocked access / frontend
    };
    static constexpr unsigned kCpiBuckets = 5;

    std::uint64_t cpiCycles(CpiBucket bucket) const
    {
        return cpi_[static_cast<unsigned>(bucket)];
    }

    // ---- measurement ----
    std::uint64_t retired() const { return retired_; }
    std::uint64_t retiredInWindow() const
    {
        return retired_ - retiredAtWindowStart_;
    }
    void resetStats(Tick now);
    double ipc(Tick now) const;

    std::uint64_t robOccupancySum() const { return robOccupancySum_; }
    std::uint64_t dispatchStalls() const { return dispatchStalls_; }

    /** Register this core's stat group (`cpu/core/<id>`). */
    void registerStats(StatRegistry &registry) const;

  private:
    struct RobEntry
    {
        bool valid = false;
        bool ready = false;
        Tick readyAt = 0;
        bool isLoad = false;
        /** Parked load that only the bulk fragment can wake. */
        bool bulkWait = false;
        std::uint64_t seq = 0;
    };

    bool robFull() const { return count_ == params_.robSize; }
    bool lastLoadPending(Tick now) const;
    CpiBucket stallBucket() const;

    std::uint8_t id_;
    Params params_;
    OpSource source_;
    cache::Hierarchy &hierarchy_;

    std::vector<RobEntry> rob_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned count_ = 0;
    std::uint64_t seqCounter_ = 0;

    /** Micro-op that could not dispatch (Blocked / dependence) and must
     *  be retried before fetching new work. */
    std::optional<workloads::MicroOp> pendingOp_;

    int lastLoadSlot_ = -1;
    std::uint64_t lastLoadSeq_ = 0;

    std::uint64_t retired_ = 0;
    std::uint64_t retiredAtWindowStart_ = 0;
    Tick windowStart_ = 0;
    std::uint64_t robOccupancySum_ = 0;
    std::uint64_t dispatchStalls_ = 0;
    std::array<std::uint64_t, kCpiBuckets> cpi_{};
};

} // namespace hetsim::cpu

#endif // HETSIM_CPU_CORE_HH
