/**
 * @file
 * ROB-occupancy out-of-order core model (paper Table 1: 8 cores, 3.2 GHz,
 * 64-entry ROB, 4-wide fetch/dispatch/execute/retire).
 *
 * Each cycle the core retires up to `width` completed instructions from
 * the ROB head and dispatches up to `width` new micro-ops from its
 * workload generator.  Loads access the cache hierarchy at dispatch and
 * park in the ROB until data arrives — for LLC misses that is the moment
 * the *critical word* is delivered (possibly tens of cycles before the
 * rest of the line, which is the paper's mechanism).  Pointer-chasing
 * loads (dependsOnPrev) cannot dispatch until the previous load's data
 * returns, serialising misses the way dependent chains do in a real OoO
 * window.
 */

#ifndef HETSIM_CPU_CORE_HH
#define HETSIM_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include <functional>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "workloads/pattern.hh"

namespace hetsim::cpu
{

class Core
{
  public:
    struct Params
    {
        unsigned robSize = 64; // Table 1
        unsigned width = 4;    // Table 1
    };

    /** Source of the core's instruction stream (a workload generator
     *  in the full system; a scripted queue in tests). */
    using OpSource = std::function<workloads::MicroOp()>;

    Core(std::uint8_t id, const Params &params, OpSource source,
         cache::Hierarchy &hierarchy);

    /** Advance one CPU cycle. */
    void tick(Tick now);

    /**
     * Earliest tick >= now at which tick() can retire or dispatch
     * anything, given the ROB state left by the last tick().  Returns
     * @p now whenever the core could make progress (fetching new work,
     * retrying a hierarchy-blocked access), a wake-independent ready
     * time when it is purely waiting, and kTickNever when only a load
     * wake (a backend event) can unblock it.
     */
    Tick nextEventTick(Tick now) const;

    /**
     * Account the skipped ticks [from, to).  Only legal when the core is
     * fully stalled across the interval (nextEventTick() >= to): each
     * skipped tick charges one dispatch stall and samples the unchanged
     * ROB occupancy, exactly as per-tick stepping would.
     */
    void fastForward(Tick from, Tick to);

    /**
     * Replay the batched compute run [from, to) tick by tick, using the
     * O(1) closed-form integration for the pure-stall gaps nextEventTick
     * exposes.  Legal only when the interval is a *replay region*: every
     * dispatch in it resolves within the private L1 (the boundary
     * predictor's promise) and no wake or external L1 touch lands inside
     * it (the event engine closes the region before either).  Exact
     * per-tick equivalence holds by construction — the replay runs the
     * real tick() against the real hierarchy.  Runs must tile the
     * timeline: @p from must equal the previous run's @p to (flagged via
     * the checker's core_batch rule).  Returns the ticks stepped
     * per-tick (the rest was integrated in closed form).
     */
    std::uint64_t runUntil(Tick from, Tick to);

    /**
     * First tick >= @p from at which this core must execute under the
     * event engine with batched runs: a sound lower bound on the
     * earliest tick whose dispatch issues a non-private access
     * (load/store leaving the L1, or a blocked-access retry).  The
     * boundary *position* in the op stream is timing-independent
     * (in-order dispatch), so it is found by a timing-free scan; the
     * *tick* is an O(position) arithmetic bound.  Never late — a late
     * boundary would replay a memory access against advanced backend
     * state; may be conservatively early, which merely costs an extra
     * event.  kTickNever when only a load wake can unblock the core.
     * Memoized; invalidated by wake() and invalidateBoundary().
     */
    Tick nextBoundaryTick(Tick from);

    /**
     * Never-late arm tick after an external mutation, O(1): the
     * memoized boundary when it survived the mutation, else the next
     * activity tick — the first non-private dispatch cannot precede
     * the first tick that retires or dispatches anything, so arming
     * there is at worst conservatively early.  Keeps the wake path
     * free of predictor runs: however many wakes land before the
     * armed event fires, the predictor runs once, at that event's
     * own re-arm.
     */
    Tick cheapArmTick(Tick from) const
    {
        if (boundaryMemoValid_ && boundaryMemo_ >= from)
            return boundaryMemo_;
        return nextEventTick(from);
    }

    /** Drop the memoized boundary and the op-stream verification
     *  frontier: an external event changed the prediction inputs in an
     *  unknown way. */
    void invalidateBoundary()
    {
        boundaryMemoValid_ = false;
        scanVerified_ = 0;
        scanBoundaryKnown_ = false;
        scanLineCount_ = 0;
        lineMapStamp_ += 1;
        posPreds_.clear();
        posPredsHead_ = 0;
    }

    /**
     * Enable the lean commit path (DESIGN.md section 16): dispatches of
     * frontier-verified positions commit through the distilled
     * Hierarchy::commitPrivateHit() using the prediction the frontier
     * captured, falling back to the full lookup the instant the
     * prediction is stale.  Off, every dispatch takes the full path.
     * The frontier only grows under the event engine's batched runs, so
     * the knob is naturally inert in the legacy tick loop.
     */
    void setLeanCommit(bool on) { leanCommit_ = on; }
    bool leanCommit() const { return leanCommit_; }

    /** Dispatches committed through the lean path / lean attempts that
     *  found a stale prediction and fell back (perf counters only). */
    std::uint64_t leanCommits() const { return leanCommits_; }
    std::uint64_t leanFallbacks() const { return leanFallbacks_; }

    /**
     * A line was evicted or back-invalidated out of this core's L1 from
     * outside its own tick (Hierarchy's CoreTouchFn done notification).
     * The boundary prediction claimed "private" only for the lines the
     * scan recorded, so both memos survive unless @p line is one of
     * them.  Installs need no
     * notification at all: turning a predicted-non-private op private
     * can only move the true boundary later, leaving the armed event
     * conservatively early, which is always sound.
     */
    void noteL1LineRemoved(Addr line);

    /** Deliver data to a parked load (called via Hierarchy's WakeFn). */
    void wake(std::uint16_t slot, Tick now);

    /** Tag a parked load as waiting on the bulk fragment (called via
     *  Hierarchy's BulkMarkFn); CPI-stack attribution only. */
    void markBulkWait(std::uint16_t slot);

    std::uint8_t id() const { return id_; }

    /**
     * CPI-stack cycle attribution (DESIGN.md section 12).  Every core
     * cycle of a measurement window lands in exactly one bucket, whether
     * it was stepped or fast-forwarded, so the bucket sum equals the
     * window's tick count (gated by HETSIM_ATTRIB).
     */
    enum class CpiBucket : std::uint8_t {
        Compute,       ///< at least one instruction retired
        CritWait,      ///< head load parked, fast word still to come
        BulkWait,      ///< head load parked, only the bulk line helps
        RobFull,       ///< head in flight (non-load), ROB full
        DispatchStall, ///< dependence wait / blocked access / frontend
    };
    static constexpr unsigned kCpiBuckets = 5;

    std::uint64_t cpiCycles(CpiBucket bucket) const
    {
        return cpi_[static_cast<unsigned>(bucket)];
    }

    // ---- measurement ----
    std::uint64_t retired() const { return retired_; }
    std::uint64_t retiredInWindow() const
    {
        return retired_ - retiredAtWindowStart_;
    }
    void resetStats(Tick now);
    double ipc(Tick now) const;

    std::uint64_t robOccupancySum() const { return robOccupancySum_; }
    std::uint64_t dispatchStalls() const { return dispatchStalls_; }

    /** Register this core's stat group (`cpu/core/<id>`). */
    void registerStats(StatRegistry &registry) const;

  private:
    struct RobEntry
    {
        bool valid = false;
        bool ready = false;
        Tick readyAt = 0;
        bool isLoad = false;
        /** Parked load that only the bulk fragment can wake. */
        bool bulkWait = false;
        std::uint64_t seq = 0;
    };

    bool robFull() const { return count_ == params_.robSize; }
    bool lastLoadPending(Tick now) const;
    CpiBucket stallBucket() const;

    struct PosPred; // defined with the prediction ring below

    Tick predictBoundary(Tick from);
    void growFrontier();
    void resetPacingFold();
    void foldPacing(PosPred &pos, Tick l1_lat);
    bool compactScanLines();
    bool tryLeanCommit(Addr addr, std::uint16_t slot, Tick now,
                       bool is_store, cache::Hierarchy::AccessResult &res);
    const workloads::MicroOp &posOp(std::uint32_t pos);
    const workloads::MicroOp &peekOp(std::size_t idx);
    void stallForward(Tick from, Tick to);
    void noteTilingBreak(Tick from, Tick to) const;
    void noteReplayAccess(const cache::Hierarchy::AccessResult &res,
                          Tick now) const;

    std::uint8_t id_;
    Params params_;
    OpSource source_;
    cache::Hierarchy &hierarchy_;

    std::vector<RobEntry> rob_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned count_ = 0;
    std::uint64_t seqCounter_ = 0;

    /** Micro-op that could not dispatch (Blocked / dependence) and must
     *  be retried before fetching new work. */
    std::optional<workloads::MicroOp> pendingOp_;

    /** Ops drawn from source_ by the boundary predictor but not yet
     *  dispatched; tick() consumes these before fetching fresh work, so
     *  the op stream order is identical with prediction on or off.
     *  Flat ring over a vector (peekedHead_ is the consume cursor,
     *  compacted when drained) — the predictor indexes this on its
     *  hottest path, where deque's chunked indexing costs. */
    std::vector<workloads::MicroOp> peeked_;
    std::size_t peekedHead_ = 0;

    /**
     * Op-stream verification frontier: the next scanVerified_ ROB
     * insertions are known to resolve in the private L1, and when
     * scanBoundaryKnown_ is set the insertion right after them is known
     * to leave it (the boundary op).  growFrontier() extends it in
     * op-stream order — insertion order equals stream order regardless
     * of timing, so each position is probed exactly once, ever, with no
     * timing simulation.  Every distinct line probed private is
     * recorded in scanLines_, so an external L1 eviction invalidates
     * precisely; when the set fills, compactScanLines() drops lines
     * whose claiming positions already dispatched, and the frontier
     * stops growing (a sound early edge) only if that frees nothing.
     * tick() keeps the frontier current: each insertion consumes one
     * position, and consuming position zero with nothing verified
     * spends the boundary claim and clears the line set (that dispatch
     * may itself reshape the L1 via an L2-hit fill).
     */
    std::uint32_t scanVerified_ = 0;
    bool scanBoundaryKnown_ = false;
    static constexpr unsigned kMaxFrontier = 256;
    static constexpr unsigned kScanLines = 32;
    std::array<Addr, kScanLines> scanLines_{};
    /** Staleness token captured when the matching scanLines_ entry was
     *  probed private; positions claiming that line carry a copy in
     *  posPreds_ so their dispatch can lean-commit in O(1). */
    std::array<cache::Cache::PredictedLine, kScanLines> scanLinePreds_{};
    unsigned scanLineCount_ = 0;

    /**
     * Stamped direct-mapped accelerator over scanLines_: line-address →
     * scanLines_ index, so the per-position membership test in
     * growFrontier() is O(1) instead of a linear scan (pointer-chase
     * windows reference a fresh line almost every mem op, which made
     * every test a full-miss walk).  Purely an accelerator: a stale or
     * colliding slot only causes a redundant re-probe and a duplicate
     * scanLines_ entry, both of which the frontier machinery already
     * tolerates.  Invalidation is wholesale via the stamp (bumped
     * whenever the line set is cleared or compacted).
     */
    static constexpr unsigned kLineMapSlots = 64;
    struct LineMapSlot
    {
        Addr line = 0;
        std::uint32_t stamp = 0;
        std::uint8_t idx = 0;
    };
    std::array<LineMapSlot, kLineMapSlots> lineMap_{};
    std::uint32_t lineMapStamp_ = 1;

    static unsigned
    lineMapSlot(Addr line)
    {
        return static_cast<unsigned>(line >> kLineShift) &
               (kLineMapSlots - 1);
    }

    int
    lineMapFind(Addr line) const
    {
        const LineMapSlot &s = lineMap_[lineMapSlot(line)];
        if (s.stamp == lineMapStamp_ && s.line == line)
            return s.idx;
        return -1;
    }

    void
    lineMapInsert(Addr line, unsigned idx)
    {
        lineMap_[lineMapSlot(line)] = {line, lineMapStamp_,
                                       static_cast<std::uint8_t>(idx)};
    }

    /** Per-position prediction for one verified frontier position. */
    struct PosPred
    {
        cache::Cache::PredictedLine line; ///< meaningful when isMem
        Addr lineAddr = 0;                ///< meaningful when isMem
        /** Start-relative ready-time bound of this insertion's ROB
         *  entry under the pacing fold (retire holds relaxed away, so
         *  a lower bound); written by foldPacing(), consumed by the
         *  fast-path retire walk for windows that fill the ROB. */
        Tick readyOff = 0;
        bool isMem = false;
        bool isLoad = false;  ///< isMem && !isWrite
        bool depends = false; ///< isMem && dependsOnPrev
    };

    /**
     * Per-position prediction ring, in lockstep with the frontier:
     * growFrontier() pushes one entry per verified position (non-mem
     * positions included, as placeholders), tick() pops one per ROB
     * insertion that consumes a position, invalidateBoundary() clears
     * both.  Ring head is always the prediction for upcoming insertion
     * #0, so the lean dispatch never searches.  Maintained whether or
     * not the lean knob is on, so toggling cannot misalign it.
     */
    std::vector<PosPred> posPreds_;
    std::size_t posPredsHead_ = 0;

    /** predictBoundary scratch: ready-time lower bounds of the
     *  in-window insertions, consumed by its retire schedule
     *  (capacity persists across calls). */
    std::vector<Tick> predReady_;

    /**
     * Incremental pacing state for predictBoundary's O(1) fast path.
     * growFrontier() folds each appended position into this
     * start-relative dispatch schedule using the exact recurrence of
     * the full pass minus its retire and live-load terms; when ring
     * consumption moves the base it refolds over the survivors (once
     * per consumption burst, not per prediction).  The fold yields
     * `B0 = start + offTick_` plus the boundary op's own checks — the
     * full pass's answer with retire pacing relaxed away, so always a
     * valid lower bound and exact whenever retire pacing cannot bind
     * (the ROB cannot fill within the window).  When it can bind,
     * predictBoundary pairs B0 with a standalone walk of the retire
     * schedule and returns max(B0, R): still never late (both terms
     * are bounds the full pass enforces), conservative-early only when
     * a mid-window retire reset cascades — which merely fires the core
     * event inside the run, replays the prefix, and re-arms.
     */
    bool offFresh_ = false;        ///< fold valid for ring base offBase_
    std::uint32_t offBase_ = 0;    ///< ring index the fold is based at
    Tick offTick_ = 0;             ///< dispatch offset of next position
    unsigned offUsed_ = 0;         ///< dispatches already at offTick_
    Tick offLoadReady_ = 0;        ///< last in-window load data offset
    bool offHaveLoad_ = false;     ///< window contains a load
    bool offEarlyDepends_ = false; ///< depends-pos before first load

    Tick boundaryMemo_ = 0;
    bool boundaryMemoValid_ = false;
    /** End of the last batched run / tick / fastForward; runUntil checks
     *  new runs start exactly here (kTickNever = nothing ran yet). */
    Tick lastRunEnd_ = kTickNever;
    /** Set while runUntil replays tick(): every hierarchy access must
     *  then be an L1-hit Ready (checker core_batch rule). */
    bool replayGuard_ = false;

    int lastLoadSlot_ = -1;
    std::uint64_t lastLoadSeq_ = 0;

    /** ROB slots holding parked loads (dispatched misses awaiting a
     *  wake) — one entry per outstanding miss.  predictBoundary's
     *  ROB-full shortcut scans this instead of walking the ROB. */
    std::vector<std::uint16_t> parkedSlots_;

    bool leanCommit_ = false;
    std::uint64_t leanCommits_ = 0;
    std::uint64_t leanFallbacks_ = 0;

    std::uint64_t retired_ = 0;
    std::uint64_t retiredAtWindowStart_ = 0;
    Tick windowStart_ = 0;
    std::uint64_t robOccupancySum_ = 0;
    std::uint64_t dispatchStalls_ = 0;
    std::array<std::uint64_t, kCpiBuckets> cpi_{};
};

} // namespace hetsim::cpu

#endif // HETSIM_CPU_CORE_HH
