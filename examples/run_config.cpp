/**
 * @file
 * Config-driven single-run CLI: pick any named memory configuration and
 * workload (synthetic or trace file), run one measurement window and
 * dump the full gem5-style statistics report.
 *
 * Usage:
 *   run_config [mem.config=RL] [bench=leslie3d | trace=<file>]
 *              [sim.reads=8000] [sim.warmup=4000] [cores=8]
 *              [prefetch=1] [parity.rate=0.0] [seed=12345]
 *
 * Examples:
 *   run_config mem.config=RL-AD bench=mcf sim.reads=40000
 *   run_config mem.config=DDR3 trace=mytrace.txt
 */

#include <iostream>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "cpu/core.hh"
#include "sim/report.hh"
#include "sim/system.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace hetsim;
using namespace hetsim::sim;

namespace
{

/** Trace-driven run: hand-assembled stack (System assumes suite
 *  profiles, so traces wire the pieces directly). */
int
runTrace(const Config &cfg, const SystemParams &params)
{
    const std::string path = cfg.getString("trace", "");
    auto trace = workloads::TraceSource::fromFile(path);
    std::cout << "trace '" << path << "': " << trace.records()
              << " records, looping\n";

    auto backend = buildBackend(params);
    cache::Hierarchy::Params hp;
    hp.cores = params.cores;
    hp.prefetch.enabled = params.prefetcherEnabled;
    cache::Hierarchy hierarchy(hp, *backend);

    // Every core replays the same trace rebased into its own region.
    std::vector<std::unique_ptr<workloads::TraceSource>> traces;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    for (unsigned c = 0; c < params.cores; ++c) {
        traces.push_back(
            std::make_unique<workloads::TraceSource>(trace));
        auto *src = traces.back().get();
        const Addr rebase = static_cast<Addr>(c) << 30;
        cores.push_back(std::make_unique<cpu::Core>(
            static_cast<std::uint8_t>(c), cpu::Core::Params{},
            [src, rebase] { return src->next(rebase); }, hierarchy));
    }
    hierarchy.setWakeFn(
        [&cores](std::uint8_t core, std::uint16_t slot, Tick when) {
            cores.at(core)->wake(slot, when);
        });

    const auto reads = cfg.getUint("sim.reads", 8000);
    const auto &stats = hierarchy.stats();
    Tick now = 0;
    while (stats.demandCompletions.value() < reads && now < 100'000'000) {
        for (auto &core : cores)
            core->tick(now);
        hierarchy.tick(now);
        backend->tick(now);
        now += 1;
    }

    double agg_ipc = 0;
    for (auto &core : cores)
        agg_ipc += core->ipc(now);
    std::cout << "config " << backend->name() << ": " << now
              << " ticks, aggregate IPC " << agg_ipc
              << ", demand reads " << stats.demandCompletions.value()
              << ", critical word latency "
              << stats.criticalWordLatency.mean() << " cycles\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.importEnvironment();
    cfg.parseArgs(argc, argv);

    SystemParams params;
    params.mem = memConfigByName(cfg.getString("mem.config", "RL"));
    params.cores =
        static_cast<unsigned>(cfg.getUint("cores", params.cores));
    params.prefetcherEnabled = cfg.getBool("prefetch", true);
    params.parityErrorRate = cfg.getDouble("parity.rate", 0.0);
    params.seed = cfg.getUint("seed", params.seed);

    if (cfg.has("trace"))
        return runTrace(cfg, params);

    const std::string bench = cfg.getString("bench", "leslie3d");
    System system(params, workloads::suite::byName(bench),
                  params.cores);

    RunConfig rc;
    rc.measureReads = cfg.getUint("sim.reads", 8000);
    rc.warmupReads = cfg.getUint("sim.warmup", rc.measureReads);
    const RunResult result = runSimulation(system, rc);

    std::cout << renderReport(system, result);
    return 0;
}
