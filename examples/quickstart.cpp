/**
 * @file
 * Quickstart: build the paper's flagship RL system (RLDRAM3 critical
 * words + LPDDR2 rest-of-line), run one workload against the DDR3
 * baseline, and print the headline comparison.
 *
 * Usage:
 *   quickstart [bench=<name>] [sim.reads=<N>] [mem.config=<RL|RD|DL|...>]
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "common/table.hh"
#include "common/trace.hh"
#include "sim/experiments.hh"

using namespace hetsim;
using namespace hetsim::sim;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.importEnvironment();
    cfg.parseArgs(argc, argv);

    const std::string bench = cfg.getString("bench", "leslie3d");
    const std::string config_name = cfg.getString("mem.config", "RL");
    const auto reads = cfg.getUint("sim.reads", 8000);

    setenv("HETSIM_READS", std::to_string(reads).c_str(), 1);
    ExperimentRunner runner;

    const SystemParams baseline =
        ExperimentRunner::paramsFor(MemConfig::BaselineDDR3);
    const SystemParams cwf =
        ExperimentRunner::paramsFor(memConfigByName(config_name));

    std::cout << "hetsim quickstart: " << bench << " on "
              << toString(cwf.mem) << " vs DDR3 baseline ("
              << reads << " demand reads per window)\n\n";

    const RunResult &base = runner.sharedRun(baseline, bench);
    const RunResult &het = runner.sharedRun(cwf, bench);
    const double norm = runner.normalizedThroughput(cwf, baseline, bench);

    Table t({"metric", "DDR3 baseline", toString(cwf.mem)});
    t.addRow({"aggregate IPC", Table::num(base.aggIpc, 2),
              Table::num(het.aggIpc, 2)});
    t.addRow({"normalized throughput", "1.000", Table::num(norm, 3)});
    t.addRow({"critical word latency (CPU cycles)",
              Table::num(base.criticalWordLatencyTicks, 1),
              Table::num(het.criticalWordLatencyTicks, 1)});
    t.addRow({"critical words served by fast DIMM",
              Table::percent(base.servedByFastFraction),
              Table::percent(het.servedByFastFraction)});
    t.addRow({"critical-word lead over rest of line (cycles)",
              Table::num(base.fastLeadTicks, 1),
              Table::num(het.fastLeadTicks, 1)});
    t.addRow({"critical-word lead p50 (cycles)",
              Table::num(base.fastLeadP50, 1),
              Table::num(het.fastLeadP50, 1)});
    t.addRow({"critical-word lead p95 (cycles)",
              Table::num(base.fastLeadP95, 1),
              Table::num(het.fastLeadP95, 1)});
    t.addRow({"demand miss latency p99 (cycles)",
              Table::num(base.missLatencyP99, 1),
              Table::num(het.missLatencyP99, 1)});
    t.addRow({"DRAM power (mW)", Table::num(base.dramPowerMw, 0),
              Table::num(het.dramPowerMw, 0)});
    t.addRow({"data-bus utilization",
              Table::percent(base.busUtilization),
              Table::percent(het.busUtilization)});
    std::cout << t.render() << "\n";

    std::cout << "Fraction of demand misses requesting each word:\n";
    Table dist({"word", "fraction"});
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        dist.addRow({std::to_string(w),
                     Table::percent(base.criticalWordDist[w])});
    }
    std::cout << dist.render();

    auto &tracer = trace::Tracer::instance();
    if (tracer.enabled() && !tracer.sinkPath().empty()) {
        tracer.flush();
        std::cout << "\nlifecycle trace: " << tracer.sinkPath() << " ("
                  << tracer.recorded() << " events, " << tracer.dropped()
                  << " dropped)\n";
    }
    return 0;
}
