/**
 * @file
 * Low-level tour of the DRAM substrate: drive one channel of each device
 * type directly with a small request script, print the issued command
 * trace (audit) and the resulting latencies, and show why RLDRAM3's
 * bank turnaround dominates queuing behaviour (paper Sections 2-3).
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "dram/channel.hh"

using namespace hetsim;
using namespace hetsim::dram;

namespace
{

void
explore(const DeviceParams &dev)
{
    std::cout << dev.name << " (" << toString(dev.policy)
              << "-page, tRC=" << dev.tRC * dev.tCkNs << " ns, "
              << dev.banksPerRank << " banks)\n";

    Channel chan("demo", dev, 1);
    chan.enableAudit(true);
    std::vector<MemRequest> done;
    chan.setCallback([&](MemRequest &req) { done.push_back(req); });

    // A tiny antagonistic script: two reads in one row, a row conflict,
    // a write, then a dependent read behind the write.
    struct Item
    {
        AccessType type;
        std::uint8_t bank;
        std::uint32_t row;
        std::uint32_t col;
    };
    const Item script[] = {
        {AccessType::Read, 0, 5, 0},  {AccessType::Read, 0, 5, 1},
        {AccessType::Read, 0, 9, 0},  {AccessType::Write, 1, 2, 0},
        {AccessType::Read, 1, 2, 1},
    };
    std::uint64_t id = 1;
    for (const auto &item : script) {
        MemRequest req;
        req.id = id;
        req.cookie = id++;
        req.lineAddr = (req.cookie - 1) * kLineBytes;
        req.type = item.type;
        req.coord = DramCoord{0, 0, item.bank, item.row, item.col};
        chan.enqueue(req, 0);
    }
    for (Tick t = 0; t <= 4000; ++t)
        chan.tick(t);

    Table cmds({"tick", "cmd", "bank", "row", "data beats"});
    for (const auto &ev : chan.audit()) {
        cmds.addRow({std::to_string(ev.at), toString(ev.cmd),
                     std::to_string(ev.bank), std::to_string(ev.row),
                     ev.dataEnd ? std::to_string(ev.dataStart) + ".." +
                                      std::to_string(ev.dataEnd)
                                : "-"});
    }
    std::cout << cmds.render();

    Table lat({"request", "type", "latency (CPU cycles)"});
    for (const auto &req : done) {
        lat.addRow({std::to_string(req.cookie),
                    req.type == AccessType::Read ? "read" : "write",
                    std::to_string(req.totalLatency())});
    }
    std::cout << lat.render();
    std::cout << "row hits: " << chan.stats().rowHits.value()
              << ", row misses: " << chan.stats().rowMisses.value()
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "hetsim channel explorer: the same five requests on the "
                 "three device types\n"
              << "======================================================="
                 "===============\n\n";
    explore(DeviceParams::ddr3_1600());
    explore(DeviceParams::lpddr2_800());
    explore(DeviceParams::rldram3());

    std::cout
        << "Note how DDR3/LPDDR2 interleave ACT/PRE commands around the\n"
        << "row conflict while RLDRAM3's compound accesses simply space\n"
        << "themselves by its 12 ns bank turnaround - the property the\n"
        << "paper's critical-word channel is built on.\n";
    return 0;
}
