/**
 * @file
 * The CWF fault-tolerance story end-to-end (paper Section 4.2.3).
 *
 * Part 1 drives the real codecs: a 64-bit word is protected by byte
 * parity on the RLDRAM critical-word channel and by (72,64) SECDED on
 * the LPDDR2 channel; injected single- and double-bit faults show the
 * early-wakeup guard (parity), correction-on-arrival (SECDED) and the
 * detected-after-retire fail-stop case.
 *
 * Part 2 runs the full simulator with an injected parity-error rate and
 * shows early wakeups being suppressed without losing correctness or
 * completing fewer fills.
 */

#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "ecc/parity.hh"
#include "ecc/secded.hh"
#include "sim/experiments.hh"
#include "sim/simulator.hh"
#include "sim/system.hh"
#include "workloads/suite.hh"

using namespace hetsim;
using namespace hetsim::sim;
using ecc::ByteParity;
using ecc::Secded7264;

namespace
{

const char *
statusName(Secded7264::Status s)
{
    switch (s) {
      case Secded7264::Status::Ok:
        return "clean";
      case Secded7264::Status::CorrectedData:
        return "single-bit data error corrected";
      case Secded7264::Status::CorrectedCheck:
        return "single-bit check error corrected";
      case Secded7264::Status::DetectedDouble:
        return "uncorrectable error detected (fail-stop)";
    }
    return "?";
}

void
codecWalkthrough()
{
    std::cout << "Part 1: the data path, for real\n"
              << "-------------------------------\n";
    const std::uint64_t critical = 0x1122334455667788ULL;
    const std::uint8_t parity = ByteParity::encode(critical);
    const std::uint8_t check = Secded7264::encode(critical);

    std::cout << "critical word 0x" << std::hex << critical << std::dec
              << "  parity=0x" << static_cast<int>(parity)
              << "  secded=0x" << static_cast<int>(check) << "\n\n";

    struct Scenario
    {
        const char *name;
        std::uint64_t corrupted;
    };
    const Scenario scenarios[] = {
        {"no fault", critical},
        {"1-bit fault on the RLDRAM channel", critical ^ (1ULL << 17)},
        {"2-bit fault, same byte (parity blind spot)",
         critical ^ 0x3ULL},
    };

    for (const auto &s : scenarios) {
        const bool parity_ok = ByteParity::check(s.corrupted, parity);
        std::cout << s.name << ":\n";
        std::cout << "  parity check before early wakeup: "
                  << (parity_ok ? "pass -> forward to waiting load"
                                : "FAIL -> hold until ECC arrives")
                  << "\n";
        // Whatever parity said, the full SECDED check runs when the
        // rest of the line (and the code word) arrives.
        const auto decoded = Secded7264::decode(s.corrupted, check);
        std::cout << "  SECDED on full-line arrival:      "
                  << statusName(decoded.status) << "\n";
        if (decoded.status == Secded7264::Status::CorrectedData) {
            std::cout << "  corrected data matches original:  "
                      << (decoded.data == critical ? "yes" : "NO")
                      << "\n";
        }
        std::cout << "\n";
    }
}

void
systemWithParityErrors()
{
    std::cout << "Part 2: injected parity-error rate in the simulator\n"
              << "---------------------------------------------------\n";
    Table t({"parity error rate", "early wakes", "blocked wakes",
             "demand fills", "aggregate IPC"});
    for (const double rate : {0.0, 0.01, 0.25, 1.0}) {
        SystemParams p = ExperimentRunner::paramsFor(MemConfig::CwfRL);
        p.parityErrorRate = rate;
        System system(p, workloads::suite::byName("leslie3d"), 8);
        RunConfig rc;
        rc.measureReads = 3000;
        rc.warmupReads = 800;
        const RunResult r = runSimulation(system, rc);
        const auto &h = system.hierarchy().stats();
        t.addRow({Table::percent(rate, 0),
                  std::to_string(h.earlyWakes.value()),
                  std::to_string(h.parityBlockedWakes.value()),
                  std::to_string(r.demandReads),
                  Table::num(r.aggIpc, 2)});
    }
    std::cout << t.render();
    std::cout
        << "\nA failed parity check only costs the early wakeup: the\n"
        << "load is woken when the SECDED-protected rest of the line\n"
        << "arrives, so fills always complete and coverage equals the\n"
        << "baseline ECC DIMM's (paper Section 4.2.3).\n";
}

} // namespace

int
main()
{
    codecWalkthrough();
    systemWithParityErrors();
    return 0;
}
