/**
 * @file
 * Domain scenario: why streaming codes love critical-word-first
 * heterogeneity and pointer chasers don't (paper Sections 4.2.1/6.1.1).
 *
 * Runs a word-0-dominant CFD streamer (leslie3d) and a pointer chaser
 * with bimodal criticality (mcf) on the baseline and the RL system, then
 * prints each program's critical-word histogram and the RL outcome.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/experiments.hh"

using namespace hetsim;
using namespace hetsim::sim;

int
main()
{
    setenv("HETSIM_READS", "8000", 0);
    ExperimentRunner runner;

    const SystemParams baseline =
        ExperimentRunner::paramsFor(MemConfig::BaselineDDR3);
    const SystemParams rl = ExperimentRunner::paramsFor(MemConfig::CwfRL);

    std::cout << "Critical-word regularity and what RL does with it\n"
              << "==================================================\n\n";

    for (const std::string bench : {"leslie3d", "mcf"}) {
        const RunResult &base = runner.sharedRun(baseline, bench);
        const RunResult &het = runner.sharedRun(rl, bench);

        std::cout << bench << " (" << (bench == "leslie3d"
                                           ? "streaming, Fig. 3a"
                                           : "pointer chasing, Fig. 3b")
                  << ")\n";

        Table hist({"word", "critical fraction"});
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            hist.addRow({std::to_string(w),
                         Table::percent(base.criticalWordDist[w])});
        }
        std::cout << hist.render();

        Table cmp({"metric", "DDR3", "RL"});
        cmp.addRow({"critical word latency (cycles)",
                    Table::num(base.criticalWordLatencyTicks, 1),
                    Table::num(het.criticalWordLatencyTicks, 1)});
        cmp.addRow({"served by RLDRAM3", "-",
                    Table::percent(het.servedByFastFraction)});
        cmp.addRow(
            {"normalized throughput", "1.000",
             Table::num(runner.normalizedThroughput(rl, baseline, bench),
                        3)});
        std::cout << cmp.render() << "\n";
    }

    std::cout
        << "The streamer's misses request word 0 almost exclusively, so\n"
        << "its critical words come from the low-latency DIMM; the\n"
        << "chaser's criticality is spread over the line and most of its\n"
        << "requests must wait for the slow DIMM (paper Fig. 8).\n";
    return 0;
}
