/**
 * @file
 * Adaptive critical-word placement (paper Section 4.2.5): every cache
 * line may designate one of its eight words as critical; the prediction
 * is committed when a dirty line is written back.  mcf — whose critical
 * words split between words 0 and 3 — is the paper's showcase.
 *
 * Compares RL (static word 0), RL-AD (adaptive) and RL-OR (oracle), and
 * demonstrates the AdaptiveLayout API directly.
 */

#include <iostream>

#include "common/table.hh"
#include "core/line_layout.hh"
#include "sim/experiments.hh"

using namespace hetsim;
using namespace hetsim::sim;

int
main()
{
    // --- 1. The layout policy in isolation -------------------------
    std::cout << "AdaptiveLayout walkthrough\n"
              << "--------------------------\n";
    cwf::AdaptiveLayout layout;
    const Addr line = 0x4000;
    std::cout << "fresh line, stored word        = "
              << layout.plannedWord(line, 3, true) << "\n";
    std::cout << "  (demand for word 3 observed; no writeback yet)\n";
    std::cout << "after re-fetch, stored word    = "
              << layout.plannedWord(line, 3, true) << "\n";
    layout.onWriteback(line);
    std::cout << "after dirty writeback, stored  = "
              << layout.plannedWord(line, 0, true) << "\n";
    std::cout << "remaps committed               = "
              << layout.remaps().value() << "\n\n";

    // --- 2. Whole-system comparison on mcf --------------------------
    // Adaptation needs full fetch -> dirty-writeback -> re-fetch cycles,
    // so this example defaults to a longer window than the others.
    setenv("HETSIM_READS", "60000", 0);
    ExperimentRunner runner;
    const SystemParams baseline =
        ExperimentRunner::paramsFor(MemConfig::BaselineDDR3);

    std::cout << "mcf under static / adaptive / oracle placement\n";
    Table t({"scheme", "norm. throughput", "served by RLDRAM3",
             "critical word latency"});
    for (const MemConfig mem :
         {MemConfig::CwfRL, MemConfig::CwfRLAdaptive,
          MemConfig::CwfRLOracle}) {
        const SystemParams p = ExperimentRunner::paramsFor(mem);
        const RunResult &r = runner.sharedRun(p, "mcf");
        t.addRow({toString(mem),
                  Table::num(
                      runner.normalizedThroughput(p, baseline, "mcf"), 3),
                  Table::percent(r.servedByFastFraction),
                  Table::num(r.criticalWordLatencyTicks, 1)});
    }
    std::cout << t.render() << "\n";
    std::cout
        << "Adaptive placement re-organises lines whose critical word\n"
        << "is not word 0 (mcf's word-3 population) when they are\n"
        << "written back, raising the fast-DIMM hit rate toward the\n"
        << "oracle bound (paper Fig. 9).\n";
    return 0;
}
